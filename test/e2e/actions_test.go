package e2e

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/amuse/smc/internal/event"
)

// An actionKind is one move the chaos generator can make against the
// running system. Weights are relative; guards below skip actions whose
// preconditions do not hold (the rng draw is still consumed, so a seed
// replays the same decision stream regardless of timing).
type actionKind int

const (
	actPublish actionKind = iota
	actJoin
	actLeave
	actSubscribe
	actUnsubscribe
	actPartition
	actHeal
	actKill
	actRestart
	actFederate
	actPolicyLoad
	actDegrade
	actRoam
	actReturn
	actLinkKill
	actLinkPartition
	actLinkHeal
	numActions
)

var actionNames = [numActions]string{
	"publish", "join", "leave", "subscribe", "unsubscribe",
	"partition", "heal", "kill", "restart", "federate", "policy-load",
	"degrade", "roam", "return",
	"link-kill", "link-partition", "link-heal",
}

var actionWeights = [numActions]int{
	actPublish:       40,
	actJoin:          6,
	actLeave:         4,
	actSubscribe:     8,
	actUnsubscribe:   4,
	actPartition:     6,
	actHeal:          6,
	actKill:          3,
	actRestart:       6,
	actFederate:      2,
	actPolicyLoad:    2,
	actDegrade:       4,
	actRoam:          4,
	actReturn:        6,
	actLinkKill:      3,
	actLinkPartition: 3,
	actLinkHeal:      4,
}

// maxActors bounds roster growth so long runs stay loopback-friendly.
const maxActors = 12

func (h *harness) drawAction() actionKind {
	total := 0
	for _, w := range actionWeights {
		total += w
	}
	n := h.rng.Intn(total)
	for k, w := range actionWeights {
		if n < w {
			return actionKind(k)
		}
		n -= w
	}
	return actPublish
}

// runActions drives the seeded chaos stream. Only infrastructure
// errors (cannot start a process, cannot bind a socket) abort the run;
// failed publishes and dead peers are the point of the exercise.
func (h *harness) runActions(count int) error {
	for i := 0; i < count; i++ {
		kind := h.drawAction()
		if err := h.apply(kind); err != nil {
			return fmt.Errorf("action %d (%s): %w", i, actionNames[kind], err)
		}
		// Jittered pacing lets traffic interleave with faults.
		time.Sleep(time.Duration(2+h.rng.Intn(8)) * time.Millisecond)
	}
	return nil
}

func (h *harness) apply(kind actionKind) error {
	switch kind {
	case actPublish:
		// Publish from anyone with a device, including partitioned and
		// orphaned actors: their sequence numbers are consumed and the
		// deliveries legitimately become gaps. Async so a doomed send
		// cannot stall the action loop.
		as := h.liveActors(nil)
		if len(as) == 0 {
			return nil
		}
		a := h.pick(as)
		cmpl, err := a.dev.Client.PublishAsync(a.chaosEvent())
		if err == nil && cmpl != nil {
			go func() {
				_ = cmpl.Wait()
				cmpl.Recycle()
			}()
		}
		return nil

	case actJoin:
		if len(h.actors) >= maxActors {
			return nil
		}
		cell := h.rng.Intn(len(h.cells))
		subscribe := h.rng.Intn(2) == 0
		if !h.cellAlive(cell) {
			return nil
		}
		_, err := h.newActor(cell, subscribe)
		if err != nil {
			// A join can lose the race with a concurrent kill; that is
			// chaos, not an infrastructure failure.
			h.logf("join actor failed (tolerated): %v", err)
		}
		return nil

	case actLeave:
		// Durable actors roam (actRoam) instead of leaving: their
		// consumer name must survive the run for the I5 lag oracle.
		as := h.liveActors(func(a *actor) bool { return !a.partition && a.durable == "" })
		if len(as) <= 2 {
			return nil // keep a quorum of traffic sources
		}
		a := h.pick(as)
		_ = a.dev.Leave()
		a.alive = false
		a.left = true
		return nil

	case actSubscribe:
		as := h.liveActors(func(a *actor) bool { return !a.subscribed && !a.partition })
		if len(as) == 0 {
			return nil
		}
		a := h.pick(as)
		a.filter = h.subscriberFilter()
		if err := a.dev.Client.Subscribe(a.filter); err != nil {
			h.logf("subscribe failed (tolerated): %v", err)
			a.filter = nil
			return nil
		}
		a.subscribed = true
		return nil

	case actUnsubscribe:
		as := h.liveActors(func(a *actor) bool { return a.subscribed && !a.partition && a.durable == "" })
		if len(as) <= 1 {
			return nil // keep at least one observer
		}
		a := h.pick(as)
		if err := a.dev.Client.Unsubscribe(a.filter); err != nil {
			h.logf("unsubscribe failed (tolerated): %v", err)
			return nil
		}
		a.subscribed = false
		a.filter = nil
		return nil

	case actPartition:
		as := h.liveActors(func(a *actor) bool { return !a.partition })
		if len(as) <= 2 {
			return nil
		}
		a := h.pick(as)
		a.tr.SetSendHook(dropAll)
		a.partition = true
		h.logf("actor %d partitioned", a.id)
		return nil

	case actHeal:
		var parts []*actor
		for _, a := range h.actors {
			if a.partition || a.lossy {
				parts = append(parts, a)
			}
		}
		if len(parts) == 0 {
			return nil
		}
		a := h.pick(parts)
		a.tr.SetSendHook(nil)
		a.partition = false
		a.lossy = false
		h.logf("actor %d healed", a.id)
		return nil

	case actKill:
		live := h.liveCellSlots()
		if len(live) <= 1 {
			return nil // keep one cell making progress
		}
		slot := live[h.rng.Intn(len(live))]
		h.killCell(h.cells[slot])
		h.killed[slot] = true
		h.orphanActors(slot)
		return nil

	case actRestart:
		var dead []int
		for slot := range h.killed {
			dead = append(dead, slot)
		}
		if len(dead) == 0 {
			return nil
		}
		slot := dead[h.rng.Intn(len(dead))]
		if err := h.startCell(h.cells[slot], ""); err != nil {
			return err
		}
		delete(h.killed, slot)
		h.rejoinCellActors(slot)
		return nil

	case actFederate:
		// With -chaos.fed the supervised relays own federation; the
		// fire-and-forget relay would only muddy the I6 oracle.
		if *chaosFed || len(h.cells) < 2 || len(h.relays) >= 1 {
			return nil
		}
		src := h.rng.Intn(len(h.cells))
		dst := h.rng.Intn(len(h.cells))
		if src == dst || h.relayPairs[[2]int{src, dst}] ||
			!h.cellAlive(src) || !h.cellAlive(dst) {
			return nil
		}
		if err := h.startRelay(src, dst); err != nil {
			h.logf("federate failed (tolerated): %v", err)
			return nil
		}
		h.relayPairs[[2]int{src, dst}] = true
		return nil

	case actPolicyLoad:
		// A graceful rolling restart with a policy file: the daemon must
		// drain, exit clean (leakcheck enforced), and come back serving
		// the new configuration.
		live := h.liveCellSlots()
		if len(live) <= 1 {
			return nil
		}
		slot := live[h.rng.Intn(len(live))]
		c := h.cells[slot]
		if err := h.stopGraceful(c); err != nil {
			return err // mid-run shutdown contract violation is a finding
		}
		if err := h.startCell(c, h.benignPolicyFile()); err != nil {
			return err
		}
		h.rejoinCellActors(slot)
		h.logf("cell %s reloaded with policies", c.name)
		return nil

	case actDegrade:
		// Degraded link: loss and reordering between real processes,
		// harsher than a clean partition because traffic still flows.
		as := h.liveActors(func(a *actor) bool { return !a.partition && !a.lossy })
		if len(as) <= 2 {
			return nil
		}
		a := h.pick(as)
		a.tr.SetSendHook(lossyHook(h.rng.Int63()))
		a.lossy = true
		h.logf("actor %d degraded (loss+reorder)", a.id)
		return nil

	case actRoam:
		// A durable subscriber walks out of range: silent close, no
		// leave. Events published while it is away become replay debt.
		var durs []*actor
		for _, a := range h.actors {
			if a.durable != "" && a.alive && !a.left {
				durs = append(durs, a)
			}
		}
		if len(durs) == 0 {
			return nil
		}
		a := h.pick(durs)
		_ = a.dev.Close()
		a.alive = false
		h.logf("durable actor %d (%s) roamed away", a.id, a.durable)
		return nil

	case actReturn:
		// A roaming durable subscriber comes back and resumes from its
		// last consumed cursor; the cell replays the gap.
		var durs []*actor
		for _, a := range h.actors {
			if a.durable != "" && !a.alive && !a.left && h.cellAlive(a.cell) {
				durs = append(durs, a)
			}
		}
		if len(durs) == 0 {
			return nil
		}
		a := h.pick(durs)
		if err := h.joinActor(a); err != nil {
			h.logf("durable actor %d return failed (tolerated, retried at quiesce): %v", a.id, err)
		} else {
			h.logf("durable actor %d (%s) returned", a.id, a.durable)
		}
		return nil

	case actLinkKill:
		// The federation gateway crashes: both memberships close, the
		// supervisor rejoins and resumes from the cursor floor.
		if len(h.fedRelays) == 0 {
			return nil
		}
		r := h.fedRelays[h.rng.Intn(len(h.fedRelays))]
		r.kill()
		h.logf("fed relay %d->%d killed", r.src, r.dst)
		return nil

	case actLinkPartition:
		// The link loses its remote cell without being told; only the
		// liveness probe can turn this into a reconnect.
		if len(h.fedRelays) == 0 {
			return nil
		}
		r := h.fedRelays[h.rng.Intn(len(h.fedRelays))]
		r.partition()
		h.logf("fed relay %d->%d partitioned", r.src, r.dst)
		return nil

	case actLinkHeal:
		if len(h.fedRelays) == 0 {
			return nil
		}
		r := h.fedRelays[h.rng.Intn(len(h.fedRelays))]
		r.heal()
		h.logf("fed relay %d->%d healed", r.src, r.dst)
		return nil
	}
	return nil
}

// subscriberFilter always matches the chaos stream: the oracle needs
// subscribers that see every publisher in their cell.
func (h *harness) subscriberFilter() *event.Filter {
	return event.NewFilter().WhereType("chaos")
}

func (h *harness) liveCellSlots() []int {
	var out []int
	for slot := range h.cells {
		if h.cellAlive(slot) {
			out = append(out, slot)
		}
	}
	return out
}

// orphanActors marks a killed cell's actors dead; their devices fail
// fast thanks to the short give-up horizon.
func (h *harness) orphanActors(slot int) {
	for _, a := range h.actors {
		if a.cell != slot || !a.alive {
			continue
		}
		_ = a.dev.Close()
		a.alive = false
	}
}

// rejoinCellActors reconnects a restarted cell's surviving actors.
func (h *harness) rejoinCellActors(slot int) {
	for _, a := range h.actors {
		if a.cell != slot || a.left || a.alive {
			continue
		}
		if err := h.joinActor(a); err != nil {
			h.logf("actor %d rejoin after restart failed (tolerated, retried at quiesce): %v", a.id, err)
		}
	}
}

// benignPolicyFile writes (once) an obligation that never fires, so a
// policy load changes configuration without perturbing the oracle.
func (h *harness) benignPolicyFile() string {
	path := filepath.Join(h.tmpDir, "benign.pol")
	if _, err := os.Stat(path); err != nil {
		src := `obligation chaos-noop { on type = "never-matches" do log("noop") }` + "\n"
		_ = os.WriteFile(path, []byte(src), 0o644)
	}
	return path
}
