package e2e

import (
	"bufio"
	"flag"
	"fmt"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

var (
	chaosActions = flag.Int("chaos.actions", 60, "actions per chaos run")
	chaosCells   = flag.Int("chaos.cells", 2, "cells per chaos run")
	chaosSeeds   = flag.String("chaos.seeds", "1,2", "comma-separated fresh seeds to run")
	chaosRecord  = flag.Bool("chaos.record", true, "append failing seeds to regression_seeds.json")
	chaosBatch   = flag.Int("chaos.batch", 0, "run cells with -batch N event coalescing (0: off)")
	chaosDurable = flag.Bool("chaos.durable", false, "run cells with a disk-backed durable log and one roaming durable subscriber per cell")
	chaosFed     = flag.Bool("chaos.fed", false, "run supervised federation relays between cells (durable cells, write-behind tail sync, link kill/partition/heal actions, I6 fence invariant)")
)

// runChaos executes one full chaos run and returns the first invariant
// violation (or infrastructure failure).
func runChaos(t *testing.T, seed int64, actions, cells int) (err error) {
	t.Logf("chaos run: seed=%d actions=%d cells=%d", seed, actions, cells)
	h, herr := newHarness(t, seed, cells)
	if herr != nil {
		if h != nil {
			h.abort()
		}
		return fmt.Errorf("setup: %w", herr)
	}
	defer func() {
		if err != nil {
			h.abort()
		}
	}()
	if err := h.runActions(actions); err != nil {
		return err
	}
	if err := h.quiesce(); err != nil {
		return err
	}
	return h.teardown()
}

// TestChaos replays the regression-seed database first, then the fresh
// seeds from -chaos.seeds. A failing fresh seed is appended to the
// database so the next run reproduces it before anything else.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness skipped in -short")
	}
	regressions, err := loadRegressionSeeds()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regressions {
		r := r
		t.Run(fmt.Sprintf("regression/seed=%d", r.Seed), func(t *testing.T) {
			if err := runChaos(t, r.Seed, r.Actions, r.Cells); err != nil {
				t.Errorf("regression seed %d (%s) failed again: %v", r.Seed, r.Note, err)
			}
		})
	}
	for _, s := range strings.Split(*chaosSeeds, ",") {
		seed, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			t.Fatalf("-chaos.seeds: %v", err)
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			if err := runChaos(t, seed, *chaosActions, *chaosCells); err != nil {
				if *chaosRecord {
					if rerr := recordRegressionSeed(seed, *chaosActions, *chaosCells, err.Error()); rerr != nil {
						t.Logf("recording failing seed: %v", rerr)
					} else {
						t.Logf("seed %d recorded in %s", seed, regressionSeedsFile)
					}
				}
				t.Errorf("seed %d: %v", seed, err)
			}
		})
	}
}

// TestBinariesEndToEnd exercises the real sensorsim and smctap
// binaries against a real smcd: join over loopback UDP with ephemeral
// ports, a one-shot -stats query, and graceful SIGTERM shutdowns all
// the way down.
func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("binary smoke test skipped in -short")
	}
	h := &harness{t: t, binDir: buildBinaries(t), tmpDir: t.TempDir()}
	c := &cellProc{slot: 0, name: "smoke", secret: "smoke-secret"}
	h.cells = []*cellProc{c}
	if err := h.startCell(c, ""); err != nil {
		t.Fatal(err)
	}
	defer h.killCell(c) // no-op after a graceful stop

	// A real sensorsim joins (through JoinCellWithRetry) and streams.
	sensor := exec.Command(filepath.Join(h.binDir, "sensorsim"),
		"-cell", "smoke", "-secret", "smoke-secret",
		"-discovery", c.discovery().String(),
		"-kind", "heart-rate", "-interval", "100ms", "-addr", "127.0.0.1:0")
	sensorOut, err := sensor.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	sensor.Stderr = sensor.Stdout
	if err := sensor.Start(); err != nil {
		t.Fatal(err)
	}
	defer sensor.Process.Kill()
	sensorReady := make(chan struct{})
	var sensorLines []string
	go func() {
		sc := bufio.NewScanner(sensorOut)
		for sc.Scan() {
			line := sc.Text()
			sensorLines = append(sensorLines, line)
			if strings.HasPrefix(line, "ready ") {
				close(sensorReady)
				break
			}
		}
		for sc.Scan() {
			sensorLines = append(sensorLines, sc.Text())
		}
	}()
	select {
	case <-sensorReady:
	case <-time.After(20 * time.Second):
		t.Fatalf("sensorsim never became ready:\n%s", strings.Join(sensorLines, "\n"))
	}
	time.Sleep(500 * time.Millisecond) // let a few readings flow

	// smctap -stats is the one-shot management-plane query.
	stats := exec.Command(filepath.Join(h.binDir, "smctap"),
		"-stats", "-discovery", c.discovery().String(), "-addr", "127.0.0.1:0")
	out, err := stats.CombinedOutput()
	if err != nil {
		t.Fatalf("smctap -stats: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "cell smoke members=1") {
		t.Fatalf("smctap -stats membership wrong:\n%s", text)
	}
	if !strings.Contains(text, "bus-channel") || !strings.Contains(text, "pool-acquired=") {
		t.Fatalf("smctap -stats missing channel counters:\n%s", text)
	}

	// Graceful stop of the sensor: exit status 0.
	if err := sensor.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- sensor.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("sensorsim exited non-zero: %v\n%s", err, strings.Join(sensorLines, "\n"))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sensorsim did not exit after SIGTERM")
	}

	// Graceful stop of the daemon: drain, leakcheck, exit 0.
	if err := h.stopGraceful(c); err != nil {
		t.Fatal(err)
	}
}
