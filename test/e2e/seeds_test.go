package e2e

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// A regressionSeed is one chaos configuration that failed in the past.
// The database (regression_seeds.json, checked in next to this file)
// is replayed before any fresh seeds on every run, so a fixed bug
// stays fixed.
type regressionSeed struct {
	Seed    int64  `json:"seed"`
	Actions int    `json:"actions"`
	Cells   int    `json:"cells"`
	Added   string `json:"added,omitempty"`
	Note    string `json:"note,omitempty"`
}

const regressionSeedsFile = "regression_seeds.json"

func loadRegressionSeeds() ([]regressionSeed, error) {
	data, err := os.ReadFile(regressionSeedsFile)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seeds []regressionSeed
	if err := json.Unmarshal(data, &seeds); err != nil {
		return nil, fmt.Errorf("%s: %w", regressionSeedsFile, err)
	}
	return seeds, nil
}

// recordRegressionSeed appends a failing configuration to the database
// unless an identical entry is already present.
func recordRegressionSeed(seed int64, actions, cells int, note string) error {
	seeds, err := loadRegressionSeeds()
	if err != nil {
		return err
	}
	for _, s := range seeds {
		if s.Seed == seed && s.Actions == actions && s.Cells == cells {
			return nil
		}
	}
	seeds = append(seeds, regressionSeed{
		Seed: seed, Actions: actions, Cells: cells,
		Added: time.Now().UTC().Format("2006-01-02"),
		Note:  note,
	})
	data, err := json.MarshalIndent(seeds, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(regressionSeedsFile, append(data, '\n'), 0o644)
}
