// Package e2e is the black-box chaos harness: it compiles the real
// daemon binaries, spawns cells as separate processes over loopback
// UDP, drives a seeded weighted random action stream against them, and
// verifies convergence invariants at quiesce. See README.md in this
// directory for the methodology and the regression-seed workflow.
package e2e

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/reliable"
	smcpkg "github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

// ---------------------------------------------------------------------
// Binary build (once per test run)
// ---------------------------------------------------------------------

var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

// buildBinaries compiles smcd, sensorsim and smctap exactly once per
// run and returns the directory holding them.
func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "smc-e2e-bin-")
		if buildErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", buildDir,
			"./cmd/smcd", "./cmd/sensorsim", "./cmd/smctap")
		cmd.Dir = "../.." // module root relative to test/e2e
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("building binaries: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

// ---------------------------------------------------------------------
// Cell processes
// ---------------------------------------------------------------------

// cellProc is one smcd process. A cell slot keeps its name and secret
// across kill/restart; the process, its IDs and its ports change.
type cellProc struct {
	slot   int
	name   string
	secret string

	mu       sync.Mutex
	cmd      *exec.Cmd
	alive    bool
	discID   ident.ID
	busID    ident.ID
	lines    []string
	readyCh  chan struct{}
	exitedCh chan struct{}
	exitErr  error
}

const (
	cellLease = 1 * time.Second
	cellGrace = 2 * time.Second
)

// startCell launches a fresh smcd for the slot and waits for its ready
// line (which is the only way to learn the ephemeral ports).
func (h *harness) startCell(c *cellProc, policyFile string) error {
	args := []string{
		"-cell", c.name, "-secret", c.secret,
		"-addr", "127.0.0.1:0", "-disc-addr", "127.0.0.1:0",
		"-lease", cellLease.String(), "-grace", cellGrace.String(),
		"-drain", "5s",
	}
	if *chaosBatch > 0 {
		args = append(args, "-batch", strconv.Itoa(*chaosBatch))
	}
	if *chaosDurable || *chaosFed {
		// The per-slot directory survives kill/restart, so a restarted
		// daemon recovers its log from disk (crash recovery rotates the
		// epoch; a graceful stop keeps it).
		args = append(args, "-durable-dir", filepath.Join(h.tmpDir, "durlog-"+c.name))
	}
	if *chaosFed {
		// Exercise the write-behind tail-sync policy under SIGKILL: the
		// active segment's appended tail is fsynced on both an append
		// cadence and a timer, so a crashed cell recovers mid-segment
		// events instead of only sealed segments.
		args = append(args, "-durable-sync-every", "8", "-durable-sync-interval", "25ms")
	}
	if policyFile != "" {
		args = append(args, "-policies", policyFile)
	}
	cmd := exec.Command(filepath.Join(h.binDir, "smcd"), args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return err
	}
	c.mu.Lock()
	c.cmd = cmd
	c.alive = true
	c.lines = nil
	c.readyCh = make(chan struct{})
	c.exitedCh = make(chan struct{})
	c.exitErr = nil
	ready := c.readyCh
	exited := c.exitedCh
	c.mu.Unlock()

	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			c.mu.Lock()
			c.lines = append(c.lines, line)
			if strings.HasPrefix(line, "ready ") {
				if err := c.parseReady(line); err == nil {
					select {
					case <-ready:
					default:
						close(ready)
					}
				}
			}
			c.mu.Unlock()
		}
		c.mu.Lock()
		c.exitErr = cmd.Wait()
		c.mu.Unlock()
		close(exited)
	}()

	select {
	case <-ready:
		h.logf("cell %s up: discovery=%s", c.name, c.discID)
		return nil
	case <-exited:
		return fmt.Errorf("cell %s exited before ready: %v\n%s",
			c.name, c.exitErr, strings.Join(c.snapshotLines(), "\n"))
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return fmt.Errorf("cell %s: no ready line in 15s", c.name)
	}
}

// parseReady extracts the service IDs from the machine-readable line:
//
//	ready cell=w1 bus=<id> bus-addr=<addr> discovery=<id> disc-addr=<addr>
//
// Caller holds c.mu.
func (c *cellProc) parseReady(line string) error {
	for _, f := range strings.Fields(line)[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "bus":
			id, err := ident.Parse(v)
			if err != nil {
				return err
			}
			c.busID = id
		case "discovery":
			id, err := ident.Parse(v)
			if err != nil {
				return err
			}
			c.discID = id
		}
	}
	if c.discID == 0 || c.busID == 0 {
		return fmt.Errorf("ready line missing ids: %q", line)
	}
	return nil
}

func (c *cellProc) snapshotLines() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

func (c *cellProc) discovery() ident.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discID
}

// stopGraceful SIGTERMs the daemon and verifies the shutdown contract:
// exit status 0 and a balanced leakcheck line. Any deviation is an
// invariant violation (I4).
func (h *harness) stopGraceful(c *cellProc) error {
	c.mu.Lock()
	cmd, alive, exited := c.cmd, c.alive, c.exitedCh
	c.alive = false
	c.mu.Unlock()
	if !alive || cmd == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("cell %s: signal: %w", c.name, err)
	}
	select {
	case <-exited:
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		return fmt.Errorf("invariant I4: cell %s did not exit within 20s of SIGTERM", c.name)
	}
	c.mu.Lock()
	exitErr := c.exitErr
	lines := append([]string(nil), c.lines...)
	c.mu.Unlock()
	if exitErr != nil {
		return fmt.Errorf("invariant I4: cell %s exited non-zero on graceful stop: %v\n%s",
			c.name, exitErr, strings.Join(lines, "\n"))
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "leakcheck ") {
			if !strings.Contains(line, "leaked=0") {
				return fmt.Errorf("invariant I4: cell %s pool leak: %s", c.name, line)
			}
			return nil
		}
	}
	return fmt.Errorf("invariant I4: cell %s printed no leakcheck line", c.name)
}

// killCell SIGKILLs the daemon: the crash the invariants must survive.
func (h *harness) killCell(c *cellProc) {
	c.mu.Lock()
	cmd, alive, exited := c.cmd, c.alive, c.exitedCh
	c.alive = false
	c.mu.Unlock()
	if !alive || cmd == nil {
		return
	}
	// A daemon that is already gone died on its own — that is a crash
	// the harness must surface, not a kill.
	select {
	case <-exited:
		c.mu.Lock()
		exitErr, lines := c.exitErr, append([]string(nil), c.lines...)
		c.mu.Unlock()
		tail := lines
		if len(tail) > 30 {
			tail = tail[len(tail)-30:]
		}
		h.logf("cell %s had ALREADY exited: %v\n%s", c.name, exitErr, strings.Join(tail, "\n"))
		return
	default:
	}
	_ = cmd.Process.Kill()
	<-exited
	h.logf("cell %s killed", c.name)
}

// ---------------------------------------------------------------------
// Actors
// ---------------------------------------------------------------------

// actor is a harness-owned client over a real UDP socket. Its oracle
// identity (the "pub" attribute it stamps on events) survives device
// restarts; its per-incarnation UDP port is kept when possible so that
// same-ID rejoin exercises the sender-side Forget/epoch path.
type actor struct {
	id   int
	cell int
	port int

	dev        *smcpkg.Device
	tr         *transport.UDPTransport
	alive      bool // device usable
	left       bool // voluntarily gone for good
	subscribed bool
	partition  bool
	lossy      bool   // degraded link (loss + reorder) installed
	durable    string // durable consumer name; "" for plain actors
	filter     *event.Filter

	nextN int64

	mu           sync.Mutex
	recv         map[int][]int64 // pub -> n sequence, in arrival order
	fence        map[int]bool    // pub -> fence observed
	fedFence     map[int]int     // pub -> federated fence arrivals (I6)
	durEpoch     uint64          // log epoch of the recorded stream
	durCursor    uint64          // highest cursor consumed this epoch
	durViolation string          // first exactly-once violation observed
}

// actorReliableCfg keeps the give-up horizon short (~1 s) so killed and
// partitioned peers do not stall the action loop or the final drain.
var actorReliableCfg = reliable.Config{
	RetryTimeout:    30 * time.Millisecond,
	MaxRetryTimeout: 200 * time.Millisecond,
	MaxRetries:      8,
}

// join (re)connects the actor to its cell, preferring its previous UDP
// port, and restarts its receive loop. Re-subscribes if the actor held
// a subscription.
func (h *harness) joinActor(a *actor) error {
	c := h.cells[a.cell]
	if !h.cellAlive(a.cell) {
		return fmt.Errorf("actor %d: cell %s down", a.id, c.name)
	}
	var tr *transport.UDPTransport
	var err error
	if a.port != 0 {
		tr, err = transport.NewUDPTransport(transport.WithPort(a.port))
	}
	if tr == nil {
		if tr, err = transport.NewUDPTransport(); err != nil {
			return fmt.Errorf("actor %d transport: %w", a.id, err)
		}
	}
	a.port = tr.LocalAddr().Port
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cfg := smcpkg.DeviceConfig{
		Type: "generic", Name: fmt.Sprintf("actor-%d", a.id),
		Secret: []byte(c.secret), Cell: c.name, Discovery: c.discovery(),
		JoinTimeout: 2 * time.Second,
		Reliable:    actorReliableCfg,
	}
	if a.durable != "" {
		// Resume from the cursor of the last event the oracle actually
		// consumed — the honest at-least-once pattern (resuming older
		// than the inbox floor is always safe; the floor drops dupes).
		a.mu.Lock()
		cfg.Durable = a.durable
		cfg.DurablePosition = client.DurablePosition{Epoch: a.durEpoch, Cursor: a.durCursor}
		a.mu.Unlock()
	}
	dev, err := smcpkg.JoinCellWithRetry(ctx, tr, cfg,
		smcpkg.RetryConfig{Attempts: 10, BaseDelay: 100 * time.Millisecond})
	if err != nil {
		return fmt.Errorf("actor %d join: %w", a.id, err)
	}
	a.dev, a.tr, a.alive, a.partition = dev, tr, true, false
	go h.recvLoop(a, dev)
	if a.subscribed {
		if err := dev.Client.Subscribe(a.filter); err != nil {
			return fmt.Errorf("actor %d resubscribe: %w", a.id, err)
		}
	}
	return nil
}

// recvLoop records every delivered event for the oracle. It exits when
// the device incarnation closes; the maps persist across incarnations.
//
// Durable actors additionally run the exactly-once cursor oracle: every
// durable delivery carries its log cursor, and within one log epoch the
// consumed cursor must be strictly increasing — a repeat or rewind is a
// duplicate delivery. A crash-recovered cell legitimately starts a new
// epoch (cursors restart, retained events are redelivered), so an epoch
// change resets the oracle's sequence history instead of flagging it.
func (h *harness) recvLoop(a *actor, dev *smcpkg.Device) {
	for e := range dev.Client.Events() {
		pv, okP := e.Get("pub")
		nv, okN := e.Get("n")
		if okP && okN {
			p64, _ := pv.Int()
			n, _ := nv.Int()
			_, fence := e.Get("fence")
			_, federated := e.Get(smcpkg.AttrFederatedFrom)
			a.mu.Lock()
			if a.durable != "" && e.Cursor != 0 {
				// Within one device incarnation the epoch is fixed by the
				// resume ack, which precedes every durable delivery.
				epoch := dev.Client.DurablePosition().Epoch
				switch {
				case epoch != a.durEpoch:
					a.durEpoch = epoch
					a.durCursor = e.Cursor
					a.recv = map[int][]int64{}
					a.fence = map[int]bool{}
					a.fedFence = map[int]int{}
				case e.Cursor <= a.durCursor:
					if a.durViolation == "" {
						a.durViolation = fmt.Sprintf(
							"durable %s redelivered cursor %d (already consumed through %d, epoch %x)",
							a.durable, e.Cursor, a.durCursor, epoch)
					}
				default:
					a.durCursor = e.Cursor
				}
			}
			if federated && *chaosFed {
				// Federated imports live outside the per-cell FIFO oracle:
				// replay across relay reconnects is at-least-once until
				// the destination log's dedup collapses it, so their n
				// sequences are not FIFO evidence. The I6 oracle counts
				// their fences instead — exactly once each, or the run
				// fails.
				if fence {
					a.fedFence[int(p64)]++
				}
			} else {
				a.recv[int(p64)] = append(a.recv[int(p64)], n)
				if fence && !federated {
					a.fence[int(p64)] = true
				}
			}
			a.mu.Unlock()
		}
		e.Release()
	}
}

// chaosEvent builds this actor's next event; n is globally monotone per
// actor and never reused, even when the publish later fails.
func (a *actor) chaosEvent() *event.Event {
	n := a.nextN
	a.nextN++
	e := event.NewTyped("chaos").SetInt("pub", int64(a.id)).SetInt("n", n)
	if *chaosFed {
		// Deterministic idempotent identity: actor IDs are globally
		// unique and n is monotone per actor, so pub<<32|n never
		// collides, and the durable logs collapse at-least-once
		// federation replay to exactly-once.
		e.SetInt(store.AttrDedup, int64(a.id)<<32|n)
	}
	return e
}

// dropAll is the client-side partition: the actor's outbound datagrams
// vanish before the socket. (Addressing encodes real IP:port, so a
// man-in-the-middle proxy would break IDs; send-side drop is the
// faithful way to isolate an endpoint.)
func dropAll(from, to ident.ID, data []byte) (bool, time.Duration) {
	return true, 0
}

// lossyHook is the degraded link between real processes: a netsim-style
// loss-and-reorder profile applied on the send side (~10% drop, 0–4 ms
// jitter — delayed datagrams genuinely overtake later ones). The hook
// owns its rng because transport sends happen on arbitrary goroutines.
func lossyHook(seed int64) transport.DeliveryHook {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(from, to ident.ID, data []byte) (bool, time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if rng.Intn(10) == 0 {
			return true, 0
		}
		return false, time.Duration(rng.Intn(5)) * time.Millisecond
	}
}

// ---------------------------------------------------------------------
// Federation relays
// ---------------------------------------------------------------------

// relay imports chaos events from cell src into cell dst, the e2e
// equivalent of a FederationLink: subscribe there, republish here,
// tagged so loops die after one hop.
type relay struct {
	src, dst int
	devSrc   *smcpkg.Device
	devDst   *smcpkg.Device
	done     chan struct{}
}

func (h *harness) startRelay(src, dst int) error {
	join := func(cell int, name string) (*smcpkg.Device, error) {
		c := h.cells[cell]
		tr, err := transport.NewUDPTransport()
		if err != nil {
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		return smcpkg.JoinCellWithRetry(ctx, tr, smcpkg.DeviceConfig{
			Type: "generic", Name: name,
			Secret: []byte(c.secret), Cell: c.name, Discovery: c.discovery(),
			JoinTimeout: 2 * time.Second, Reliable: actorReliableCfg,
		}, smcpkg.RetryConfig{Attempts: 6, BaseDelay: 100 * time.Millisecond})
	}
	name := fmt.Sprintf("relay-%d-%d", src, dst)
	devSrc, err := join(src, name+"-out")
	if err != nil {
		return fmt.Errorf("relay src: %w", err)
	}
	devDst, err := join(dst, name+"-in")
	if err != nil {
		devSrc.Close()
		return fmt.Errorf("relay dst: %w", err)
	}
	if err := devSrc.Client.Subscribe(event.NewFilter().WhereType("chaos")); err != nil {
		devSrc.Close()
		devDst.Close()
		return fmt.Errorf("relay subscribe: %w", err)
	}
	r := &relay{src: src, dst: dst, devSrc: devSrc, devDst: devDst, done: make(chan struct{})}
	go func() {
		defer close(r.done)
		for e := range devSrc.Client.Events() {
			if e.Has(smcpkg.AttrFederatedFrom) {
				e.Release()
				continue
			}
			imported := e.Clone()
			imported.SetStr(smcpkg.AttrFederatedFrom, h.cells[src].name)
			e.Release()
			_ = devDst.Client.Publish(imported) // dst congested or down: drop
		}
	}()
	h.relays = append(h.relays, r)
	h.logf("federation relay %s -> %s up", h.cells[src].name, h.cells[dst].name)
	return nil
}

func (h *harness) stopRelays() {
	for _, r := range h.relays {
		r.devSrc.Close()
		<-r.done
		r.devDst.Close()
	}
	h.relays = nil
}

// ---------------------------------------------------------------------
// Supervised federation relays (-chaos.fed)
// ---------------------------------------------------------------------

// fedRelay is the supervised federation gateway of -chaos.fed: the e2e
// counterpart of smc.FederationLink against out-of-process cells. It
// joins the src cell as a durable consumer under a stable consumer
// name, remembers its resume position across device incarnations,
// republishes matching events into dst tagged and dedup-stamped, and
// probes both memberships for liveness so a killed, partitioned or
// restarted cell (or a killed link) converges to reconnect plus
// resume-from-cursor replay.
type fedRelay struct {
	h        *harness
	src, dst int
	consumer string

	posMu  sync.Mutex
	epoch  uint64 // src log epoch of the resume position
	cursor uint64 // last src cursor consumed

	devMu  sync.Mutex
	devSrc *smcpkg.Device
	devDst *smcpkg.Device
	trSrc  *transport.UDPTransport

	connected  atomic.Bool
	reconnects atomic.Uint64
	imported   atomic.Uint64
	dropped    atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	stop   chan struct{}
	done   chan struct{}
}

func (h *harness) startFedRelay(src, dst int) *fedRelay {
	r := &fedRelay{
		h: h, src: src, dst: dst,
		consumer: fmt.Sprintf("fed-relay-%d-%d", src, dst),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	h.fedRelays = append(h.fedRelays, r)
	go r.run()
	return r
}

// joinSide joins one cell, retrying forever (the cell may be down for
// a while) until it succeeds or the relay stops. The src side binds the
// durable consumer and resumes from the relay's position; an epoch
// mismatch after a src crash means replay-from-oldest, which the dedup
// stamps collapse downstream.
func (r *fedRelay) joinSide(slot int, name string, durable bool) (*smcpkg.Device, *transport.UDPTransport, bool) {
	for {
		c := r.h.cells[slot]
		tr, err := transport.NewUDPTransport()
		if err == nil {
			cfg := smcpkg.DeviceConfig{
				Type: "federation-gateway", Name: name,
				Secret: []byte(c.secret), Cell: c.name, Discovery: c.discovery(),
				JoinTimeout: 2 * time.Second, Reliable: actorReliableCfg,
			}
			if durable {
				r.posMu.Lock()
				cfg.Durable = r.consumer
				cfg.DurablePosition = client.DurablePosition{Epoch: r.epoch, Cursor: r.cursor}
				r.posMu.Unlock()
			}
			ctx, cancel := context.WithTimeout(r.ctx, 15*time.Second)
			dev, jerr := smcpkg.JoinCellWithRetry(ctx, tr, cfg,
				smcpkg.RetryConfig{Attempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 500 * time.Millisecond})
			cancel()
			if jerr == nil {
				return dev, tr, true
			}
		}
		select {
		case <-r.stop:
			return nil, nil, false
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// run is the supervisor: join both sides, pump until either membership
// dies, tear the incarnation down, reconnect. Only stopFedRelays ends
// the loop.
func (r *fedRelay) run() {
	defer close(r.done)
	first := true
	for {
		devSrc, trSrc, ok := r.joinSide(r.src, r.consumer+"-out", true)
		if !ok {
			return
		}
		devDst, _, ok := r.joinSide(r.dst, r.consumer+"-in", false)
		if !ok {
			_ = devSrc.Close()
			return
		}
		if err := devSrc.Client.Subscribe(event.NewFilter().WhereType("chaos")); err != nil {
			_ = devSrc.Close()
			_ = devDst.Close()
			select {
			case <-r.stop:
				return
			case <-time.After(200 * time.Millisecond):
			}
			continue
		}
		r.devMu.Lock()
		r.devSrc, r.devDst, r.trSrc = devSrc, devDst, trSrc
		r.devMu.Unlock()
		if !first {
			r.reconnects.Add(1)
			r.h.logf("fed relay %d->%d reconnected (epoch=%x cursor=%d)", r.src, r.dst, r.epoch, r.cursor)
		}
		first = false
		r.connected.Store(true)
		r.pump(devSrc, devDst)
		r.connected.Store(false)
		r.devMu.Lock()
		r.devSrc, r.devDst, r.trSrc = nil, nil, nil
		r.devMu.Unlock()
		_ = devSrc.Close()
		_ = devDst.Close()
		select {
		case <-r.stop:
			return
		default:
		}
	}
}

// pump imports until either side dies. Each side gets a liveness probe
// (Device.Probe is a reliable heartbeat: it gives up on a dead peer),
// because a killed or partitioned cell never closes Events() on its
// own.
func (r *fedRelay) pump(devSrc, devDst *smcpkg.Device) {
	dead := make(chan struct{})
	var deadOnce sync.Once
	probeStop := make(chan struct{})
	defer close(probeStop)
	probe := func(dev *smcpkg.Device) {
		t := time.NewTicker(250 * time.Millisecond)
		defer t.Stop()
		misses := 0
		for {
			select {
			case <-probeStop:
				return
			case <-t.C:
			}
			if dev.Probe() != nil {
				if misses++; misses >= 2 {
					deadOnce.Do(func() { close(dead) })
					return
				}
			} else {
				misses = 0
			}
		}
	}
	go probe(devSrc)
	go probe(devDst)
	events := devSrc.Client.Events()
	for {
		select {
		case e, ok := <-events:
			if !ok {
				return // src client closed (link kill)
			}
			r.importEvent(devSrc, devDst, e, dead)
		case <-dead:
			return
		case <-r.stop:
			return
		}
	}
}

// importEvent republishes one src event into dst under the
// FederationLink contract: advance the resume floor for every durable
// delivery (skips included), tag the import against loops, stamp the
// chaos stream's deterministic dedup identity, and publish with
// bounded blocking-with-retry rather than silent drop.
func (r *fedRelay) importEvent(devSrc, devDst *smcpkg.Device, e *event.Event, dead <-chan struct{}) {
	if e.Cursor != 0 {
		r.posMu.Lock()
		r.epoch = devSrc.Client.DurablePosition().Epoch
		r.cursor = e.Cursor
		r.posMu.Unlock()
	}
	if e.Has(smcpkg.AttrFederatedFrom) {
		e.Release()
		return
	}
	imported := e.Clone()
	imported.SetStr(smcpkg.AttrFederatedFrom, r.h.cells[r.src].name)
	if d, ok := chaosDedupID(e); ok {
		imported.SetInt(store.AttrDedup, d)
	}
	e.Release()
	for attempt := 0; attempt < 5; attempt++ {
		if err := devDst.Client.Publish(imported); err == nil {
			r.imported.Add(1)
			return
		}
		select {
		case <-r.stop:
			attempt = 5
		case <-dead:
			attempt = 5
		case <-time.After(20 * time.Millisecond):
		}
	}
	imported.Release()
	r.dropped.Add(1)
}

// chaosDedupID recovers the deterministic idempotent identity stamped
// by chaosEvent.
func chaosDedupID(e *event.Event) (int64, bool) {
	v, ok := e.Get(store.AttrDedup)
	if !ok {
		return 0, false
	}
	d, isInt := v.Int()
	return d, isInt
}

// kill closes the relay's current devices — the gateway crash. The
// supervisor notices (Events() closes) and reconnects from the resume
// floor.
func (r *fedRelay) kill() {
	r.devMu.Lock()
	devSrc, devDst := r.devSrc, r.devDst
	r.devMu.Unlock()
	if devSrc != nil {
		_ = devSrc.Close()
	}
	if devDst != nil {
		_ = devDst.Close()
	}
}

// partition drops the relay's src-side datagrams: the link loses its
// remote cell without being told. The liveness probe gives up and the
// supervisor reconnects on a fresh (unhooked) socket, so the partition
// heals through actLinkHeal or through the reconnect itself.
func (r *fedRelay) partition() {
	r.devMu.Lock()
	if r.trSrc != nil {
		r.trSrc.SetSendHook(dropAll)
	}
	r.devMu.Unlock()
}

func (r *fedRelay) heal() {
	r.devMu.Lock()
	if r.trSrc != nil {
		r.trSrc.SetSendHook(nil)
	}
	r.devMu.Unlock()
}

// stopFedRelays ends supervision and tears the relay memberships down.
func (h *harness) stopFedRelays() {
	for _, r := range h.fedRelays {
		close(r.stop)
		r.cancel()
		r.kill()
		<-r.done
	}
	h.fedRelays = nil
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

type harness struct {
	t      *testing.T
	rng    *rand.Rand
	binDir string
	tmpDir string

	cells     []*cellProc
	actors    []*actor
	relays    []*relay
	fedRelays []*fedRelay

	relayPairs map[[2]int]bool
	killed     map[int]bool // cell slots currently down
}

func (h *harness) logf(format string, args ...interface{}) {
	h.t.Logf(format, args...)
}

func (h *harness) cellAlive(slot int) bool {
	c := h.cells[slot]
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive
}

// newHarness boots nCells smcd processes and two actors per cell (both
// publishers, the first also a subscriber from the start). With
// -chaos.durable each cell additionally hosts one durable roaming
// subscriber fed from the cell's event log.
func newHarness(t *testing.T, seed int64, nCells int) (*harness, error) {
	h := &harness{
		t:          t,
		rng:        rand.New(rand.NewSource(seed)),
		binDir:     buildBinaries(t),
		tmpDir:     t.TempDir(),
		relayPairs: map[[2]int]bool{},
		killed:     map[int]bool{},
	}
	for i := 0; i < nCells; i++ {
		c := &cellProc{slot: i, name: fmt.Sprintf("cell-%d", i), secret: fmt.Sprintf("secret-%d", i)}
		h.cells = append(h.cells, c)
		if err := h.startCell(c, ""); err != nil {
			return h, err
		}
	}
	for i := 0; i < nCells; i++ {
		for j := 0; j < 2; j++ {
			if _, err := h.newActor(i, j == 0); err != nil {
				return h, err
			}
		}
	}
	if *chaosDurable {
		for i := 0; i < nCells; i++ {
			if _, err := h.newDurableActor(i); err != nil {
				return h, err
			}
		}
	}
	if *chaosFed {
		if nCells < 2 {
			return h, fmt.Errorf("-chaos.fed needs at least 2 cells")
		}
		// A supervised relay per adjacent pair; loop prevention keeps
		// every import single-hop.
		for i := 0; i+1 < nCells; i++ {
			h.startFedRelay(i, i+1)
		}
		if err := h.waitFedConnected(); err != nil {
			return h, err
		}
	}
	return h, nil
}

func (h *harness) newActor(cell int, subscribe bool) (*actor, error) {
	a := &actor{
		id:       len(h.actors),
		cell:     cell,
		recv:     map[int][]int64{},
		fence:    map[int]bool{},
		fedFence: map[int]int{},
	}
	h.actors = append(h.actors, a)
	if err := h.joinActor(a); err != nil {
		return nil, err
	}
	if subscribe {
		a.filter = event.NewFilter().WhereType("chaos")
		if err := a.dev.Client.Subscribe(a.filter); err != nil {
			return nil, err
		}
		a.subscribed = true
	}
	return a, nil
}

// newDurableActor joins a durable subscriber: its consumer name binds
// it to the cell's event log, so it can roam (actRoam/actReturn) and
// still see every retained event exactly once per log epoch.
func (h *harness) newDurableActor(cell int) (*actor, error) {
	a := &actor{
		id:       len(h.actors),
		cell:     cell,
		recv:     map[int][]int64{},
		fence:    map[int]bool{},
		fedFence: map[int]int{},
	}
	a.durable = fmt.Sprintf("dur-%d", a.id)
	h.actors = append(h.actors, a)
	if err := h.joinActor(a); err != nil {
		return nil, err
	}
	a.filter = event.NewFilter().WhereType("chaos")
	if err := a.dev.Client.Subscribe(a.filter); err != nil {
		return nil, err
	}
	a.subscribed = true
	return a, nil
}

// liveActors returns actors with a usable device, optionally filtered
// by predicate.
func (h *harness) liveActors(pred func(*actor) bool) []*actor {
	var out []*actor
	for _, a := range h.actors {
		if a.alive && !a.left && (pred == nil || pred(a)) {
			out = append(out, a)
		}
	}
	return out
}

func (h *harness) pick(as []*actor) *actor {
	return as[h.rng.Intn(len(as))]
}

// ---------------------------------------------------------------------
// Quiesce and invariants
// ---------------------------------------------------------------------

// queryStats performs the same one-shot management-plane query smctap
// -stats does, from a throwaway endpoint.
func queryStats(discID ident.ID) (wire.CellStats, error) {
	tr, err := transport.NewUDPTransport()
	if err != nil {
		return wire.CellStats{}, err
	}
	ch := reliable.New(tr, reliable.Config{})
	defer ch.Close()
	if err := ch.Send(discID, wire.PktStatsRequest, nil); err != nil {
		return wire.CellStats{}, err
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		pkt, err := ch.RecvTimeout(time.Until(deadline))
		if err != nil {
			return wire.CellStats{}, err
		}
		if pkt.Type != wire.PktStatsResponse {
			pkt.Release()
			continue
		}
		st, err := wire.DecodeCellStats(pkt.Payload)
		pkt.Release()
		return st, err
	}
}

// quiesce heals every fault, reconnects every actor, and verifies the
// four convergence invariants. Any error it returns names the first
// invariant that failed.
func (h *harness) quiesce() error {
	// Heal: remove partitions and degraded links, restart dead cells,
	// stop relays (their imports are tagged and stay excluded from
	// fence accounting).
	for _, a := range h.actors {
		if (a.partition || a.lossy) && a.tr != nil {
			a.tr.SetSendHook(nil)
			a.partition = false
			a.lossy = false
		}
	}
	for slot := range h.killed {
		if err := h.startCell(h.cells[slot], ""); err != nil {
			return fmt.Errorf("quiesce restart: %w", err)
		}
	}
	h.killed = map[int]bool{}
	h.stopRelays()
	// Supervised relays stay up through quiesce — recovering and then
	// carrying the fence exchange IS the federation invariant. Heal any
	// link partition and wait for the supervisors to converge.
	if *chaosFed {
		for _, r := range h.fedRelays {
			r.heal()
		}
		if err := h.waitFedConnected(); err != nil {
			return err
		}
	}

	// Reconnect every surviving actor with a fresh incarnation — the
	// uniform way to recover members purged during partitions — and
	// re-establish subscriptions (Subscribe is acknowledged, so once it
	// returns the bus routes to us).
	for _, a := range h.actors {
		if a.left {
			continue
		}
		if a.alive && a.dev != nil {
			_ = a.dev.Close()
			a.alive = false
		}
		if err := h.joinActor(a); err != nil {
			return fmt.Errorf("quiesce rejoin: %w", err)
		}
	}

	// Invariant I3: every cell's own membership view must agree with
	// the harness roster once leases settle.
	if err := h.waitMembership(); err != nil {
		return err
	}

	// Invariant I1: fence events published after heal must reach every
	// same-cell subscriber — nothing reliable is lost at convergence.
	for _, a := range h.liveActors(nil) {
		e := a.chaosEvent().SetInt("fence", 1)
		if err := a.dev.Client.Publish(e); err != nil {
			return fmt.Errorf("invariant I1: actor %d fence publish: %w", a.id, err)
		}
	}
	if err := h.waitFences(); err != nil {
		return err
	}

	// Invariant I5: every durable consumer drains its lag to zero —
	// after heal, a durable subscriber eventually consumed every event
	// its cell retained, and never consumed any cursor twice within one
	// log epoch (exactly-once over the retained stream).
	if err := h.waitDurables(); err != nil {
		return err
	}

	// Invariant I6: after heal, every fence crosses each federation
	// relay and reaches every destination-cell subscriber exactly once
	// — replay across reconnects is collapsed by dedup, never lost and
	// never doubled.
	if err := h.waitFedFences(); err != nil {
		return err
	}

	// Invariant I2: per-publisher FIFO with no duplicates — every
	// recorded (subscriber, publisher) sequence is strictly increasing.
	for _, a := range h.actors {
		a.mu.Lock()
		for pub, seq := range a.recv {
			for i := 1; i < len(seq); i++ {
				if seq[i] <= seq[i-1] {
					a.mu.Unlock()
					return fmt.Errorf("invariant I2: actor %d saw pub %d out of order: n=%d after n=%d (pos %d of %d)",
						a.id, pub, seq[i], seq[i-1], i, len(seq))
				}
			}
		}
		a.mu.Unlock()
	}
	return nil
}

func (h *harness) waitMembership() error {
	wait := cellLease + cellGrace + 15*time.Second
	if *chaosFed {
		// A relay mid-reconnect briefly counts twice (old incarnation
		// still leased, new one joined); give the purge room.
		wait += 15 * time.Second
	}
	deadline := time.Now().Add(wait)
	for slot, c := range h.cells {
		want := len(h.liveActors(func(a *actor) bool { return a.cell == slot }))
		// Each supervised relay holds one membership in its src cell
		// and one in its dst cell.
		for _, r := range h.fedRelays {
			if r.src == slot {
				want++
			}
			if r.dst == slot {
				want++
			}
		}
		var last string
		for {
			st, err := queryStats(c.discovery())
			if err == nil && int(st.Members) == want {
				break
			}
			if err != nil {
				last = err.Error()
			} else {
				last = fmt.Sprintf("members=%d want=%d", st.Members, want)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("invariant I3: cell %s membership never agreed: %s", c.name, last)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// waitDurables enforces invariant I5. The management plane is the
// observer: each cell's stats report one row per durable consumer with
// its delivery lag against the log tail, so "eventually sees every
// retained event" is exactly "every row attached with lag zero". The
// exactly-once half is the recvLoop cursor oracle, checked last so a
// duplicate delivered during the drain still fails the run.
func (h *harness) waitDurables() error {
	any := false
	for _, a := range h.actors {
		if a.durable != "" && !a.left {
			any = true
		}
	}
	if !any {
		return nil
	}
	deadline := time.Now().Add(30 * time.Second)
	for slot, c := range h.cells {
		var want []*actor
		for _, a := range h.actors {
			if a.cell == slot && a.durable != "" && !a.left {
				want = append(want, a)
			}
		}
		if len(want) == 0 {
			continue
		}
		for {
			last := ""
			st, err := queryStats(c.discovery())
			switch {
			case err != nil:
				last = err.Error()
			case !st.Log.Enabled:
				last = "durable log not enabled"
			default:
				for _, a := range want {
					row := ""
					for _, d := range st.Durables {
						if d.Name != a.durable {
							continue
						}
						if d.Attached && d.Lag == 0 {
							row = "ok"
						} else {
							row = fmt.Sprintf("consumer %s attached=%v lag=%d", d.Name, d.Attached, d.Lag)
						}
						break
					}
					if row == "" {
						row = fmt.Sprintf("consumer %s has no stats row", a.durable)
					}
					if row != "ok" {
						last = row
						break
					}
				}
			}
			if last == "" {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("invariant I5: cell %s durable lag never drained: %s", c.name, last)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	for _, a := range h.actors {
		a.mu.Lock()
		v := a.durViolation
		a.mu.Unlock()
		if v != "" {
			return fmt.Errorf("invariant I5: actor %d: %s", a.id, v)
		}
	}
	return nil
}

// waitFedConnected waits until every supervised relay holds live
// memberships on both sides.
func (h *harness) waitFedConnected() error {
	deadline := time.Now().Add(60 * time.Second)
	for _, r := range h.fedRelays {
		for !r.connected.Load() {
			if time.Now().After(deadline) {
				return fmt.Errorf("invariant I6: relay %s->%s never (re)connected",
					h.cells[r.src].name, h.cells[r.dst].name)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

// waitFedFences enforces invariant I6: the post-heal fence from every
// live publisher in a relay's src cell reaches every subscribed actor
// in the dst cell exactly once. The "at least once" half proves the
// supervised link recovered (a parked or dead link starves it — the
// old permanent-death bug); the "at most once" half proves reconnect
// replay is collapsed by the destination log's dedup rather than
// surfacing as duplicates.
func (h *harness) waitFedFences() error {
	if len(h.fedRelays) == 0 {
		return nil
	}
	deadline := time.Now().Add(45 * time.Second)
	for {
		missing := ""
		for _, r := range h.fedRelays {
			subs := h.liveActors(func(a *actor) bool { return a.cell == r.dst && a.subscribed })
			pubs := h.liveActors(func(a *actor) bool { return a.cell == r.src })
			for _, sub := range subs {
				for _, pub := range pubs {
					sub.mu.Lock()
					n := sub.fedFence[pub.id]
					sub.mu.Unlock()
					if n == 0 {
						missing = fmt.Sprintf("subscriber %d (cell %s) missing federated fence from publisher %d (cell %s)",
							sub.id, h.cells[r.dst].name, pub.id, h.cells[r.src].name)
					}
				}
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant I6: %s", missing)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Every fence crossed; give straggling duplicates a settle window,
	// then require exactly-once.
	time.Sleep(500 * time.Millisecond)
	for _, a := range h.actors {
		a.mu.Lock()
		for pub, n := range a.fedFence {
			if n > 1 {
				a.mu.Unlock()
				return fmt.Errorf("invariant I6: subscriber %d saw federated fence from publisher %d %d times, want exactly once",
					a.id, pub, n)
			}
		}
		a.mu.Unlock()
	}
	return nil
}

func (h *harness) waitFences() error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		missing := ""
		for _, sub := range h.liveActors(func(a *actor) bool { return a.subscribed }) {
			for _, pub := range h.liveActors(func(a *actor) bool { return a.cell == sub.cell }) {
				sub.mu.Lock()
				ok := sub.fence[pub.id]
				sub.mu.Unlock()
				if !ok {
					missing = fmt.Sprintf("subscriber %d missing fence from publisher %d (cell %s)",
						sub.id, pub.id, h.cells[sub.cell].name)
				}
			}
		}
		if missing == "" {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("invariant I1: %s", missing)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// teardown leaves cleanly and checks invariant I4 on every daemon.
func (h *harness) teardown() error {
	for _, a := range h.actors {
		if a.alive && a.dev != nil {
			_ = a.dev.Leave()
			a.alive = false
		}
	}
	h.stopRelays()
	h.stopFedRelays()
	// Let leave-purges and final acks settle before asking the daemons
	// to drain.
	time.Sleep(500 * time.Millisecond)
	var firstErr error
	for _, c := range h.cells {
		if err := h.stopGraceful(c); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// abort force-kills everything after a failure so the test process
// never leaks daemons.
func (h *harness) abort() {
	for _, a := range h.actors {
		if a.alive && a.dev != nil {
			_ = a.dev.Close()
			a.alive = false
		}
	}
	h.stopRelays()
	h.stopFedRelays()
	for _, c := range h.cells {
		h.killCell(c)
	}
}
