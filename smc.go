// Package smc is the public API of the AMUSE self-managed-cell event
// service: a content-based publish/subscribe event bus with reliable,
// ordered, at-most-once delivery for body-area networks of medical
// devices, plus the discovery and policy services that make a cell
// self-managing.
//
// It reproduces the system of Strowes et al., "An Event Service
// Supporting Autonomic Management of Ubiquitous Systems for e-Health"
// (ICDCS Workshops 2006). See README.md for a tour and DESIGN.md for
// the architecture.
//
// # Quick start
//
//	net := smc.NewNetwork(smc.LinkPerfect)
//	defer net.Close()
//
//	cell, _ := smc.NewCell(mustAttach(net, 1), mustAttach(net, 2), smc.Config{
//		Cell:   "ward-3",
//		Secret: []byte("shared-secret"),
//	})
//	cell.Start()
//	defer cell.Close()
//
//	dev, _ := smc.JoinCell(mustAttach(net, 3), smc.DeviceConfig{
//		Type: "generic", Name: "monitor", Secret: []byte("shared-secret"),
//	})
//	defer dev.Close()
//
//	_ = dev.Client.Subscribe(smc.NewFilter().WhereType("alarm"))
//	e, _ := dev.Client.NextEvent(time.Second)
package smc

import (
	"github.com/amuse/smc/internal/bus"
	"github.com/amuse/smc/internal/client"
	"github.com/amuse/smc/internal/discovery"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/sensor"
	smccore "github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/transport"
)

// Core event-model types.
type (
	// Event is a set of named, typed attributes plus metadata.
	Event = event.Event
	// Value is a typed attribute value.
	Value = event.Value
	// Filter is a conjunction of constraints over attributes.
	Filter = event.Filter
	// Constraint restricts one attribute.
	Constraint = event.Constraint
	// Op is a constraint operator.
	Op = event.Op
	// ID is a 48-bit service identifier.
	ID = ident.ID
)

// Constraint operators.
const (
	OpEq       = event.OpEq
	OpNe       = event.OpNe
	OpLt       = event.OpLt
	OpLe       = event.OpLe
	OpGt       = event.OpGt
	OpGe       = event.OpGe
	OpPrefix   = event.OpPrefix
	OpSuffix   = event.OpSuffix
	OpContains = event.OpContains
	OpExists   = event.OpExists
)

// Event constructors and value helpers.
var (
	// NewEvent returns an empty event.
	NewEvent = event.New
	// NewTypedEvent returns an event with the "type" attribute set.
	NewTypedEvent = event.NewTyped
	// AcquireEvent returns a recycled event from the free list for the
	// zero-allocation publish path; see event.Acquire for the
	// release/retention contract.
	AcquireEvent = event.Acquire
	// NewFilter returns an empty filter (matches everything).
	NewFilter = event.NewFilter
	// Int, Float, Str, Bool and Bytes build attribute values.
	Int   = event.Int
	Float = event.Float
	Str   = event.Str
	Bool  = event.Bool
	Bytes = event.Bytes
)

// Cell composition.
type (
	// Config configures a cell.
	Config = smccore.Config
	// Cell is a running self-managed cell (bus + discovery + policy).
	Cell = smccore.Cell
	// DeviceConfig configures a device-side join.
	DeviceConfig = smccore.DeviceConfig
	// RetryConfig bounds JoinCellWithRetry's backoff.
	RetryConfig = smccore.RetryConfig
	// Device is a joined member (client + heartbeats).
	Device = smccore.Device
	// Client is a member's connection to the event bus.
	Client = client.Client
	// FederateConfig configures a cell-to-cell import link.
	FederateConfig = smccore.FederateConfig
	// FederationLink imports events from a peer cell.
	FederationLink = smccore.FederationLink
	// FederationStats is a point-in-time snapshot of one link.
	FederationStats = smccore.FederationStats
)

// Cell and device entry points.
var (
	// NewCell wires a cell over two transport endpoints.
	NewCell = smccore.NewCell
	// JoinCell performs the device-side discovery/admission flow.
	JoinCell = smccore.JoinCell
	// JoinCellWithRetry is JoinCell with bounded exponential backoff
	// and jitter; the right default for devices on lossy links.
	JoinCellWithRetry = smccore.JoinCellWithRetry
	// Federate joins a peer cell and imports matching events.
	Federate = smccore.Federate
)

// AttrFederatedFrom marks events imported from a peer cell.
const AttrFederatedFrom = smccore.AttrFederatedFrom

// Matching mechanisms (the paper's two buses, plus the type-based
// engine its future work names).
const (
	// MatcherSiena is the Siena-based engine with translation.
	MatcherSiena = matcher.KindSiena
	// MatcherFast is the dedicated fast-forwarding engine.
	MatcherFast = matcher.KindFast
	// MatcherTyped is the type-based engine (§VI future work):
	// subscriptions pin a '/'-separated type path and receive all
	// subtypes.
	MatcherTyped = matcher.KindTyped
)

// Transports and simulated networks.
type (
	// Transport carries byte arrays between services (§III-D).
	Transport = transport.Transport
	// Network is the in-process simulated datagram network.
	Network = netsim.Network
	// LinkProfile describes a simulated link's behaviour.
	LinkProfile = netsim.Profile
)

// Link profiles (see internal/netsim for calibration notes).
var (
	LinkPerfect   = netsim.Perfect
	LinkUSB       = netsim.USBLink
	LinkBluetooth = netsim.Bluetooth
	LinkZigBee    = netsim.ZigBee
	LinkWiFi      = netsim.WiFi
)

// NewNetwork builds a simulated network with the given default link.
func NewNetwork(link LinkProfile, opts ...netsim.Option) *Network {
	return netsim.New(link, opts...)
}

// NewUDPTransport opens a real UDP datagram transport, deriving the
// service ID from the bound socket as the prototype does (§IV).
var NewUDPTransport = transport.NewUDPTransport

// Policy service surface.
type (
	// PolicyEngine hosts obligation and authorisation policies.
	PolicyEngine = policy.Engine
	// Obligation is an event-condition-action rule.
	Obligation = policy.Obligation
	// Authorization is an access-control rule.
	Authorization = policy.Authorization
)

// ParsePolicies parses Ponder-lite policy text.
var ParsePolicies = policy.Parse

// Synthetic medical devices (see internal/sensor).
type (
	// SensorKind identifies a physiological measurement.
	SensorKind = sensor.Kind
	// Reading is one native sensor sample.
	Reading = sensor.Reading
	// SensorSim is a simulated sensor device.
	SensorSim = sensor.Sim
	// ActuatorSim is a simulated actuator device.
	ActuatorSim = sensor.ActuatorSim
)

// Sensor kinds.
const (
	SensorHeartRate   = sensor.KindHeartRate
	SensorSpO2        = sensor.KindSpO2
	SensorTemperature = sensor.KindTemperature
	SensorBPSystolic  = sensor.KindBPSystolic
	SensorBPDiastolic = sensor.KindBPDiastolic
	SensorGlucose     = sensor.KindGlucose
)

// Well-known event attributes and classes.
const (
	AttrType        = event.AttrType
	AttrMember      = event.AttrMember
	AttrDeviceType  = event.AttrDeviceType
	TypeNewMember   = event.TypeNewMember
	TypePurgeMember = event.TypePurgeMember
	TypeAlarm       = event.TypeAlarm
	TypeReading     = sensor.TypeReading
	TypeActuate     = sensor.TypeActuate
)

// Bus surface exposed for advanced embedding (building a bus without
// the discovery/policy services).
type (
	// Bus is the event bus.
	Bus = bus.Bus
	// BusOption configures a bus.
	BusOption = bus.Option
	// BusCost models a constrained host's processing overhead.
	BusCost = bus.Cost
)

// Discovery surface for custom admission logic.
type (
	// MemberInfo is a discovery-service membership record.
	MemberInfo = discovery.MemberInfo
	// JoinResult describes a successful admission.
	JoinResult = discovery.JoinResult
)
