// Benchmarks regenerating the paper's evaluation (§V), one per figure
// plus the ablations of §VI. Run:
//
//	go test -bench=. -benchmem
//
// Each iteration performs the figure's unit of work on the calibrated
// simulated testbed (internal/netsim.USBLink stands in for the paper's
// iPAQ↔laptop link); the reported ns/op at each payload size is the
// ordinate of the corresponding figure. cmd/benchfig prints the full
// series in one shot instead.
package smc_test

import (
	"fmt"
	"testing"
	"time"

	"github.com/amuse/smc/internal/bench"
	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/netsim"
	"github.com/amuse/smc/internal/wire"
)

// benchPayloads is a compact payload grid shared by the bus
// benchmarks; cmd/benchfig sweeps the figures' full grids.
var benchPayloads = []int{0, 1000, 3000, 5000}

// BenchmarkFig4aResponseTime measures one publish→deliver round per
// iteration for each bus flavour and payload size — Figure 4(a).
func BenchmarkFig4aResponseTime(b *testing.B) {
	for _, flavor := range bench.Flavors() {
		for _, size := range benchPayloads {
			name := fmt.Sprintf("%s/payload=%dB", flavor.Name, size)
			b.Run(name, func(b *testing.B) {
				env, err := bench.NewEnv(flavor, bench.EnvConfig{
					Link: netsim.USBLink, Subscribers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				if _, err := env.PublishAndWait(size, 30*time.Second); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := env.PublishAndWait(size, 30*time.Second); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4bThroughput streams windowed events for each flavour
// and payload size and reports payload KB/s — Figure 4(b).
func BenchmarkFig4bThroughput(b *testing.B) {
	for _, flavor := range bench.Flavors() {
		for _, size := range []int{250, 1000, 3000} {
			name := fmt.Sprintf("%s/payload=%dB", flavor.Name, size)
			b.Run(name, func(b *testing.B) {
				env, err := bench.NewEnv(flavor, bench.EnvConfig{
					Link: netsim.USBLink, Subscribers: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				b.ResetTimer()
				var bps float64
				var events int
				for i := 0; i < b.N; i++ {
					bps, events, err = env.Throughput(size, 500*time.Millisecond, 4)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(bps/1024, "KB/s")
				b.ReportMetric(float64(events), "events")
			})
		}
	}
}

// BenchmarkFig4bThroughputSweep extends Figure 4(b) beyond the paper:
// payload streaming at fan-outs of 1–8 subscribers across pipeline
// shard counts, with the host-cost model off so the bus pipeline
// itself — not the simulated 2006 PDA — is the measurand. The win of
// the sharded zero-copy pipeline (PR 1) shows up here; BENCH_PR1.json
// records the before/after numbers.
func BenchmarkFig4bThroughputSweep(b *testing.B) {
	for _, fan := range []int{1, 4, 8} {
		for _, shards := range []int{1, 4} {
			name := fmt.Sprintf("fanout=%d/shards=%d", fan, shards)
			b.Run(name, func(b *testing.B) {
				env, err := bench.NewEnv(bench.FastRaw, bench.EnvConfig{
					Link: netsim.USBLink, Subscribers: fan, Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer env.Close()
				b.ResetTimer()
				var bps float64
				var events int
				for i := 0; i < b.N; i++ {
					bps, events, err = env.Throughput(1000, 500*time.Millisecond, 4)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(bps/1024, "KB/s")
				b.ReportMetric(float64(events), "events")
			})
		}
	}
}

// BenchmarkReliableWindowE2E sweeps the reliable channel's sliding
// window through the full member path — publisher enqueue → bus →
// proxy → remote deliver — on the calibrated USB link with the cost
// model off. Window=1 is the seed's stop-and-wait on every hop;
// larger windows let both the publish hop and the proxy's pipelined
// delivery hop fill the link. BENCH_PR2.json records the series.
func BenchmarkReliableWindowE2E(b *testing.B) {
	for _, window := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("window=%d", window), func(b *testing.B) {
			env, err := bench.NewEnv(bench.FastRaw, bench.EnvConfig{
				Link: netsim.USBLink, Subscribers: 1, Window: window,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			var eps float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eps, err = env.StreamAsync(250, 200, 2*window, 30*time.Second)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(eps, "events/sec")
		})
	}
}

// lossyLAN is the batching benchmark's link: real latency and loss
// but no bandwidth cap, so packet count — not link capacity — is the
// bottleneck. On the bandwidth-bound USBLink coalescing cannot change
// events/sec (the same payload bytes must cross the wire either way);
// here every coalesced packet saves a full round of per-packet latency
// and loss exposure, which is exactly the effect being measured.
var lossyLAN = netsim.Profile{
	Name:      "lossy-lan",
	Latency:   2 * time.Millisecond,
	Jitter:    500 * time.Microsecond,
	Loss:      0.05,
	Duplicate: 0.02,
	Reorder:   0.1,
	ReorderBy: 2 * time.Millisecond,
}

// BenchmarkReliableWindowE2EBatched is the wire-level batching variant
// of BenchmarkReliableWindowE2E on the lossy latency-bound profile:
// stop-and-wait (the seed's behaviour), the PR 2 sliding window alone,
// and the window combined with 16-event coalescing at both the client
// publish hop and the proxy delivery hop. BENCH_PR7.json pins the
// batched/stop-and-wait ratio at ≥10×.
func BenchmarkReliableWindowE2EBatched(b *testing.B) {
	variants := []struct {
		name          string
		window, batch int
	}{
		{"stop-and-wait", 1, 0},
		{"window=16", 16, 0},
		{"window=16/batch=16", 16, 16},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			env, err := bench.NewEnv(bench.FastRaw, bench.EnvConfig{
				Link: lossyLAN, Subscribers: 1,
				Window: v.window, BatchEvents: v.batch,
				BatchFlush: 200 * time.Microsecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			// Enough in flight that size — not the flush deadline —
			// cuts the batches.
			inflight := 2 * v.window
			if v.batch > 1 {
				inflight = 2 * v.window * v.batch
			}
			var eps float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eps, err = env.StreamAsync(250, 400, inflight, 60*time.Second)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(eps, "events/sec")
		})
	}
}

// BenchmarkLinkBaseline measures the raw simulated link with no bus in
// the path — the §V in-text calibration (≈575 KB/s, ≈1.5 ms).
func BenchmarkLinkBaseline(b *testing.B) {
	b.Run("latency", func(b *testing.B) {
		net := netsim.New(netsim.USBLink, netsim.WithSeed(7))
		defer net.Close()
		src, err := net.Attach(ident.New(1))
		if err != nil {
			b.Fatal(err)
		}
		dst, err := net.Attach(ident.New(2))
		if err != nil {
			b.Fatal(err)
		}
		payload := []byte{1}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send(dst.LocalID(), payload); err != nil {
				b.Fatal(err)
			}
			if _, err := dst.RecvTimeout(5 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("throughput-4KB", func(b *testing.B) {
		net := netsim.New(netsim.USBLink, netsim.WithSeed(8))
		defer net.Close()
		src, err := net.Attach(ident.New(1))
		if err != nil {
			b.Fatal(err)
		}
		dst, err := net.Attach(ident.New(2))
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, 4096)
		b.SetBytes(4096)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := src.Send(dst.LocalID(), payload); err != nil {
				b.Fatal(err)
			}
			if _, err := dst.RecvTimeout(5 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFanout measures delivery-to-all delay against the
// number of recipients (§VI).
func BenchmarkAblationFanout(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("subscribers=%d", n), func(b *testing.B) {
			env, err := bench.NewEnv(bench.FastFlavor, bench.EnvConfig{
				Link: netsim.USBLink, Subscribers: n,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			if _, err := env.PublishAndWait(500, 60*time.Second); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := env.PublishAndWait(500, 60*time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMatcher isolates the matching mechanisms (no host
// cost, no network): match one event against n installed
// subscriptions. The translation overhead of the Siena engine is
// directly visible in ns/op and allocs/op.
func BenchmarkAblationMatcher(b *testing.B) {
	kinds := []matcher.Kind{matcher.KindSiena, matcher.KindFast, matcher.KindTyped}
	for _, kind := range kinds {
		for _, n := range []int{10, 100, 1000, 10000} {
			b.Run(fmt.Sprintf("%s/subs=%d", kind, n), func(b *testing.B) {
				m, err := matcher.New(kind)
				if err != nil {
					b.Fatal(err)
				}
				w := bench.NewMatcherWorkload(n)
				for i, f := range w.Filters {
					if err := m.Subscribe(ident.New(uint64(i+1)), f); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Match(w.Events[i%len(w.Events)])
				}
			})
		}
	}
}

// BenchmarkAblationQuench compares the publish path with and without
// quenching while no subscriber matches (§VI power saving): quenched
// publishers skip the radio entirely.
func BenchmarkAblationQuench(b *testing.B) {
	for _, quench := range []bool{false, true} {
		name := "off"
		if quench {
			name = "on"
		}
		b.Run("quench="+name, func(b *testing.B) {
			env, err := bench.NewEnv(bench.FastFlavor, bench.EnvConfig{
				Link: netsim.USBLink, Subscribers: 1,
				NoSubscriptions: true, Quench: quench,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			// Prime: first publish triggers the quench.
			_ = env.Pub.Publish(event.NewTyped("bench"))
			time.Sleep(50 * time.Millisecond)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = env.Pub.Publish(event.NewTyped("bench").SetInt("n", int64(i)))
			}
			b.StopTimer()
			st := env.Pub.Stats()
			b.ReportMetric(float64(st.Published), "transmitted")
			b.ReportMetric(float64(st.QuenchSuppressed), "suppressed")
		})
	}
}

// BenchmarkAblationRedelivery measures a full disconnect/redeliver
// cycle (§VI): publish through a window where the subscriber is
// unreachable, restore it, and wait for complete in-order delivery.
func BenchmarkAblationRedelivery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env, err := bench.NewEnv(bench.FastFlavor, bench.EnvConfig{
			Link: netsim.USBLink, Subscribers: 1, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		sub := env.Subs[0]
		b.StartTimer()

		env.Net.Isolate(sub.ID())
		for k := 0; k < 5; k++ {
			if err := env.Pub.Publish(event.NewTyped("bench").SetInt("n", int64(k))); err != nil {
				b.Fatal(err)
			}
		}
		env.Net.Restore(sub.ID())
		for k := 0; k < 5; k++ {
			if _, err := sub.NextEvent(30 * time.Second); err != nil {
				b.Fatalf("delivery %d: %v", k, err)
			}
		}
		b.StopTimer()
		env.Close()
		b.StartTimer()
	}
}

// BenchmarkManagementWorkload pushes the realistic SMC traffic mix
// (§II-C: mostly small readings, some alarms, rare membership/control)
// through each bus flavour with the standard monitoring subscriptions
// installed, measuring end-to-end cost per event.
func BenchmarkManagementWorkload(b *testing.B) {
	for _, flavor := range bench.Flavors() {
		b.Run(flavor.Name, func(b *testing.B) {
			env, err := bench.NewEnv(flavor, bench.EnvConfig{
				Link: netsim.USBLink, Subscribers: 1, NoSubscriptions: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			sub := env.Subs[0]
			// An empty filter receives the whole stream, so every
			// published event can be awaited and ns/op covers the
			// full publish→match→deliver pipeline.
			if err := sub.Subscribe(event.NewFilter()); err != nil {
				b.Fatal(err)
			}
			w := bench.NewWorkload(bench.DefaultMix(), 3)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e, _ := w.Next()
				if err := env.Pub.Publish(e); err != nil {
					b.Fatal(err)
				}
				if _, err := sub.NextEvent(30 * time.Second); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireEncoding covers the byte-array boundary of §III-D:
// event encode and decode cost at representative sizes.
func BenchmarkWireEncoding(b *testing.B) {
	for _, size := range []int{64, 1024, 4096} {
		e := event.NewTyped("bench").SetBytes("payload", make([]byte, size))
		b.Run(fmt.Sprintf("encode/%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				benchSink = wire.EncodeEvent(e)
			}
		})
		buf := wire.EncodeEvent(e)
		b.Run(fmt.Sprintf("decode/%dB", size), func(b *testing.B) {
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if _, err := wire.DecodeEvent(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

var benchSink []byte
