// Command smctap joins a running cell as a generic member and prints
// every event matching a content filter — the observation tool for a
// live SMC (think tcpdump for the event bus).
//
// Usage:
//
//	smctap -cell ward-3 -secret s3cret -discovery <id from smcd> \
//	       -filter 'type = "alarm" && severity >= 2'
//
// The filter syntax is the Ponder-lite constraint grammar (see
// internal/policy); an empty filter taps everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// parseFilter reuses the policy parser's constraint grammar by
// wrapping the expression in a throwaway obligation.
func parseFilter(expr string) (*event.Filter, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return event.NewFilter(), nil
	}
	src := "obligation tap { on " + expr + ` do log("") }`
	f, err := policy.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("bad filter expression: %w", err)
	}
	return f.Obligations[0].On, nil
}

func run() error {
	var (
		cellName = flag.String("cell", "smc-cell", "cell to join")
		secret   = flag.String("secret", "change-me", "shared admission secret")
		discStr  = flag.String("discovery", "", "discovery service ID (from smcd); empty waits for beacons")
		filterEx = flag.String("filter", "", `constraint expression, e.g. 'type = "alarm" && severity >= 2'; empty taps everything`)
		name     = flag.String("name", "smctap", "device name in the cell")
	)
	flag.Parse()

	filter, err := parseFilter(*filterEx)
	if err != nil {
		return err
	}

	tr, err := transport.NewUDPTransport()
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	var discID ident.ID
	if *discStr != "" {
		if discID, err = ident.Parse(*discStr); err != nil {
			return fmt.Errorf("discovery ID: %w", err)
		}
	}

	dev, err := smc.JoinCell(tr, smc.DeviceConfig{
		Type: "generic", Name: *name, Secret: []byte(*secret),
		Cell: *cellName, Discovery: discID,
	})
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	if err := dev.Client.Subscribe(filter); err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	fmt.Printf("tapping cell %q with %s\n", dev.Join.Cell, filter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	count := 0
	for {
		select {
		case <-sig:
			fmt.Printf("\n%d events observed\n", count)
			return dev.Leave()
		case e := <-dev.Client.Events():
			count++
			fmt.Printf("%s %s", time.Now().Format("15:04:05.000"), renderEvent(e))
			e.Release() // delivered events are pooled borrowing decodes
		}
	}
}

// renderEvent prints one event as a single line.
func renderEvent(e *event.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s #%d]", e.Sender, e.Seq)
	e.Range(func(name string, v event.Value) bool {
		fmt.Fprintf(&sb, " %s=%s", name, v)
		return true
	})
	sb.WriteByte('\n')
	return sb.String()
}
