// Command smctap joins a running cell as a generic member and prints
// every event matching a content filter — the observation tool for a
// live SMC (think tcpdump for the event bus).
//
// Usage:
//
//	smctap -cell ward-3 -secret s3cret -discovery <id from smcd> \
//	       -filter 'type = "alarm" && severity >= 2'
//
// The filter syntax is the Ponder-lite constraint grammar (see
// internal/policy); an empty filter taps everything.
//
// With -stats the tool instead performs a one-shot management-plane
// query: it asks the discovery service for the cell's counters
// (bus/channel statistics and the packet-pool balance), prints them
// and exits. No admission is required for a stats query.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/reliable"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/transport"
	"github.com/amuse/smc/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// parseFilter reuses the policy parser's constraint grammar by
// wrapping the expression in a throwaway obligation.
func parseFilter(expr string) (*event.Filter, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return event.NewFilter(), nil
	}
	src := "obligation tap { on " + expr + ` do log("") }`
	f, err := policy.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("bad filter expression: %w", err)
	}
	return f.Obligations[0].On, nil
}

func run() error {
	var (
		cellName = flag.String("cell", "smc-cell", "cell to join")
		secret   = flag.String("secret", "change-me", "shared admission secret")
		discStr  = flag.String("discovery", "", "discovery service ID (from smcd); empty waits for beacons")
		filterEx = flag.String("filter", "", `constraint expression, e.g. 'type = "alarm" && severity >= 2'; empty taps everything`)
		name     = flag.String("name", "smctap", "device name in the cell")
		addr     = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0: OS chooses)")
		stats    = flag.Bool("stats", false, "one-shot query: print the cell's counters and exit")
	)
	flag.Parse()

	filter, err := parseFilter(*filterEx)
	if err != nil {
		return err
	}

	addrOpt, err := transport.WithAddr(*addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	tr, err := transport.NewUDPTransport(addrOpt)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}
	var discID ident.ID
	if *discStr != "" {
		if discID, err = ident.Parse(*discStr); err != nil {
			return fmt.Errorf("discovery ID: %w", err)
		}
	}

	if *stats {
		if *discStr == "" {
			return fmt.Errorf("-stats requires -discovery (the ID printed by smcd)")
		}
		return statsQuery(tr, discID)
	}

	dev, err := smc.JoinCell(tr, smc.DeviceConfig{
		Type: "generic", Name: *name, Secret: []byte(*secret),
		Cell: *cellName, Discovery: discID,
	})
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	if err := dev.Client.Subscribe(filter); err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	fmt.Printf("tapping cell %q with %s\n", dev.Join.Cell, filter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	count := 0
	for {
		select {
		case <-sig:
			fmt.Printf("\n%d events observed\n", count)
			return dev.Leave()
		case e, ok := <-dev.Client.Events():
			if !ok {
				fmt.Printf("\nconnection closed after %d events\n", count)
				return nil
			}
			count++
			fmt.Printf("%s %s", time.Now().Format("15:04:05.000"), renderEvent(e))
			e.Release() // delivered events are pooled borrowing decodes
		}
	}
}

// statsQuery asks the discovery service at discID for the cell's
// management-plane snapshot and prints it in flat key=value form, one
// section per line, so shell harnesses can grep single counters.
func statsQuery(tr transport.Transport, discID ident.ID) error {
	ch := reliable.New(tr, reliable.Config{})
	defer ch.Close()
	if err := ch.Send(discID, wire.PktStatsRequest, nil); err != nil {
		return fmt.Errorf("stats request: %w", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		pkt, err := ch.RecvTimeout(time.Until(deadline))
		if err != nil {
			return fmt.Errorf("stats response: %w", err)
		}
		if pkt.Type != wire.PktStatsResponse {
			pkt.Release()
			continue
		}
		st, err := wire.DecodeCellStats(pkt.Payload)
		pkt.Release()
		if err != nil {
			return fmt.Errorf("decode stats: %w", err)
		}
		fmt.Printf("cell %s members=%d published=%d delivered-local=%d enqueued-remote=%d dropped=%d quenches=%d auth-denied=%d\n",
			st.Cell, st.Members, st.Published, st.DeliveredLocal,
			st.EnqueuedRemote, st.Dropped, st.Quenches, st.AuthDenied)
		printChannel("bus-channel ", st.BusChannel)
		printChannel("disc-channel", st.DiscChannel)
		printDurable(st)
		printFederation(st)
		return nil
	}
}

// printDurable renders the durable log section: depth, cursor range,
// retained bytes and per-consumer lag. Nothing is printed for a cell
// without a durable log.
func printDurable(st wire.CellStats) {
	if !st.Log.Enabled {
		return
	}
	l := st.Log
	fmt.Printf("durable-log epoch=%016x events=%d bytes=%d segments=%d oldest-cursor=%d newest-cursor=%d\n",
		l.Epoch, l.Events, l.Bytes, l.Segments, l.OldestCursor, l.NewestCursor)
	fmt.Printf("durable-log appended=%d evicted=%d dups-dropped=%d seg-acquired=%d seg-recycled=%d seg-leaked=%d\n",
		l.Appended, l.Evicted, l.DupsDropped,
		l.SegmentsAcquired, l.SegmentsRecycled,
		l.SegmentsAcquired-l.SegmentsRecycled)
	for _, d := range st.Durables {
		fmt.Printf("durable-consumer name=%s attached=%t delivered=%d lag=%d\n",
			d.Name, d.Attached, d.Delivered, d.Lag)
	}
}

// printFederation renders one row per federation link importing into
// this cell. Nothing is printed for a cell without links.
func printFederation(st wire.CellStats) {
	for _, f := range st.Federation {
		fmt.Printf("federation name=%s remote=%s connected=%t imported=%d skipped=%d dropped=%d reconnects=%d resume-epoch=%016x resume-cursor=%d\n",
			f.Name, f.RemoteCell, f.Connected, f.Imported, f.Skipped,
			f.Dropped, f.Reconnects, f.ResumeEpoch, f.ResumeCursor)
	}
}

func printChannel(label string, c wire.ChannelCounters) {
	fmt.Printf("%s sent=%d acked=%d retransmits=%d fast-retransmits=%d failures=%d resumed=%d stream-resets=%d\n",
		label, c.Sent, c.Acked, c.Retransmits, c.FastRetransmits,
		c.Failures, c.Resumed, c.StreamResets)
	fmt.Printf("%s received=%d dups-dropped=%d buffered=%d stale-acks=%d stale-epoch=%d unreliable-in=%d unreliable-out=%d\n",
		label, c.Received, c.DupsDropped, c.Buffered, c.StaleAcks,
		c.StaleEpoch, c.UnreliableIn, c.UnreliableOut)
	fmt.Printf("%s pool-acquired=%d pool-recycled=%d pool-leaked=%d\n",
		label, c.PacketsAcquired, c.PacketsRecycled, c.Leaked())
}

// renderEvent prints one event as a single line.
func renderEvent(e *event.Event) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s #%d]", e.Sender, e.Seq)
	e.Range(func(name string, v event.Value) bool {
		fmt.Fprintf(&sb, " %s=%s", name, v)
		return true
	})
	sb.WriteByte('\n')
	return sb.String()
}
