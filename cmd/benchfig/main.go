// Command benchfig regenerates the paper's evaluation figures as text
// series (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	benchfig -fig 4a          # Figure 4(a): response time vs payload
//	benchfig -fig 4b          # Figure 4(b): throughput vs payload
//	benchfig -fig link        # §V in-text link calibration
//	benchfig -fig fanout      # ablation: delay vs recipients
//	benchfig -fig quench      # ablation: quenching savings
//	benchfig -fig redelivery  # ablation: disconnect/redeliver cycle
//	benchfig -fig all -full   # everything, figure-quality sweeps
//
// It doubles as the CI benchmark regression gate: feed it the text
// output of `go test -bench` and a committed baseline, and it fails
// (exit 1) when a gated metric regresses beyond the tolerance or a
// required ratio (e.g. windowed ≥2× stop-and-wait) is not met:
//
//	go test -run '^$' -bench ... | tee bench.txt
//	benchfig -gate bench.txt -baseline BENCH_PR2.json -gate-out bench.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/amuse/smc/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 4a, 4b, link, fanout, quench, redelivery, all")
		full     = flag.Bool("full", false, "figure-quality sweep (slower); default is a quick sweep")
		gate     = flag.String("gate", "", "gate mode: path to `go test -bench` output (\"-\" for stdin)")
		baseline = flag.String("baseline", "BENCH_PR3.json", "gate mode: committed baseline JSON with a \"gate\" section")
		gateOut  = flag.String("gate-out", "", "gate mode: write the machine-readable report JSON here")
	)
	flag.Parse()
	if *gate != "" {
		if err := runGate(*gate, *baseline, *gateOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func runGate(benchPath, baselinePath, outPath string) error {
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := bench.ParseGoBench(in)
	if err != nil {
		return fmt.Errorf("parse bench output: %w", err)
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark results in %s", benchPath)
	}
	spec, err := bench.LoadGateSpec(baselinePath)
	if err != nil {
		return err
	}
	rep := bench.RunGate(measured, spec)
	rep.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	if !rep.Pass {
		return fmt.Errorf("benchmark gate failed")
	}
	return nil
}

func run(fig string, full bool) error {
	opt := bench.Quick()
	if full {
		opt = bench.Full()
	}

	type job struct {
		name string
		fn   func(bench.Options) (bench.Result, error)
	}
	jobs := map[string]job{
		"4a":         {"Figure 4(a)", bench.Fig4aResponseTime},
		"4b":         {"Figure 4(b)", bench.Fig4bThroughput},
		"link":       {"Link baseline", bench.LinkBaseline},
		"fanout":     {"Fan-out ablation", bench.AblationFanout},
		"quench":     {"Quench ablation", bench.AblationQuench},
		"redelivery": {"Redelivery ablation", bench.AblationRedelivery},
	}
	order := []string{"link", "4a", "4b", "fanout", "quench", "redelivery"}

	var selected []string
	if fig == "all" {
		selected = order
	} else {
		if _, ok := jobs[fig]; !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		selected = []string{fig}
	}

	for _, key := range selected {
		j := jobs[key]
		fmt.Fprintf(os.Stderr, "running %s...\n", j.name)
		res, err := j.fn(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		res.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}
