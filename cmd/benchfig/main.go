// Command benchfig regenerates the paper's evaluation figures as text
// series (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	benchfig -fig 4a          # Figure 4(a): response time vs payload
//	benchfig -fig 4b          # Figure 4(b): throughput vs payload
//	benchfig -fig link        # §V in-text link calibration
//	benchfig -fig fanout      # ablation: delay vs recipients
//	benchfig -fig quench      # ablation: quenching savings
//	benchfig -fig redelivery  # ablation: disconnect/redeliver cycle
//	benchfig -fig all -full   # everything, figure-quality sweeps
//
// It doubles as the CI benchmark regression gate: feed it the text
// output of `go test -bench` and a committed baseline, and it fails
// (exit 1) when a gated metric regresses beyond the tolerance or a
// required ratio (e.g. windowed ≥2× stop-and-wait) is not met:
//
//	go test -run '^$' -bench ... | tee bench.txt
//	benchfig -gate bench.txt -baseline BENCH_PR4.json -gate-out bench.json
//
// A third mode measures shard scaling: `benchfig -cpus` reruns the bus
// hot-path benchmark under GOMAXPROCS 1, 2 and 4 (via `go test -cpu`)
// and prints shards=1 vs shards=N throughput per processor count — the
// sweep the ROADMAP calls for before believing any shard-scalability
// claim. On a single-hardware-CPU host it says so: oversubscribed
// GOMAXPROCS on one core measures scheduling overhead, not parallel
// speedup.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/amuse/smc/internal/bench"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 4a, 4b, link, fanout, quench, redelivery, all")
		full     = flag.Bool("full", false, "figure-quality sweep (slower); default is a quick sweep")
		gate     = flag.String("gate", "", "gate mode: path to `go test -bench` output (\"-\" for stdin)")
		baseline = flag.String("baseline", "BENCH_PR4.json", "gate mode: committed baseline JSON with a \"gate\" section")
		gateOut  = flag.String("gate-out", "", "gate mode: write the machine-readable report JSON here")
		cpus     = flag.Bool("cpus", false, "shard-scaling mode: run BenchmarkBusHotPath under -cpu 1,2,4 and compare shards=1 vs shards=GOMAXPROCS")
	)
	flag.Parse()
	if *cpus {
		if err := runCPUSweep(); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if *gate != "" {
		if err := runGate(*gate, *baseline, *gateOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// runCPUSweep executes the bus hot-path benchmark at 8-subscriber
// local fan-out across GOMAXPROCS=1,2,4 and prints an events/sec table
// per (GOMAXPROCS, shards) point plus the shards=N / shards=1 speedup.
func runCPUSweep() error {
	fmt.Fprintf(os.Stderr, "running BenchmarkBusHotPath under -cpu 1,2,4 (hardware CPUs: %d)...\n", runtime.NumCPU())
	// One `go test` invocation per -cpu value: sub-benchmark discovery
	// runs shardCounts() under that GOMAXPROCS, so the shards=GOMAXPROCS
	// point exists at every processor count (a single -cpu 1,2,4 run
	// discovers the tree once, under the first value only). The loop
	// variable already identifies the processor count, so the standard
	// suffix-stripping parser does.
	type point struct{ procs, shards int }
	values := make(map[point]float64)
	procsSeen := []int{1, 2, 4}
	for _, procs := range procsSeen {
		cmd := exec.Command("go", "test", "./internal/bus", "-run", "^$",
			"-bench", "BenchmarkBusHotPath/delivery=local/fanout=8", "-benchtime", "1s",
			"-cpu", strconv.Itoa(procs))
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -cpu %d: %w", procs, err)
		}
		meas, err := bench.ParseGoBench(bytes.NewReader(out))
		if err != nil {
			return fmt.Errorf("parse bench output: %w", err)
		}
		for name, m := range meas {
			j := strings.LastIndex(name, "shards=")
			if j < 0 {
				continue
			}
			shards, err := strconv.Atoi(name[j+len("shards="):])
			if err != nil {
				continue
			}
			values[point{procs, shards}] = m.Metrics["events/sec"]
		}
	}
	if len(values) == 0 {
		return fmt.Errorf("no benchmark results")
	}

	fmt.Printf("# shard scaling sweep: BenchmarkBusHotPath/delivery=local/fanout=8 (events/sec)\n")
	fmt.Printf("# hardware CPUs: %d\n", runtime.NumCPU())
	for _, procs := range procsSeen {
		var shardsSeen []int
		for pt := range values {
			if pt.procs == procs {
				shardsSeen = append(shardsSeen, pt.shards)
			}
		}
		sort.Ints(shardsSeen)
		for _, s := range shardsSeen {
			fmt.Printf("GOMAXPROCS=%d shards=%d %.0f\n", procs, s, values[point{procs, s}])
		}
		base, hasBase := values[point{procs, 1}]
		best, bestShards := 0.0, 0
		for _, s := range shardsSeen {
			if s != 1 && values[point{procs, s}] > best {
				best, bestShards = values[point{procs, s}], s
			}
		}
		if hasBase && base > 0 && bestShards != 0 {
			fmt.Printf("GOMAXPROCS=%d speedup shards=%d/shards=1: %.2fx\n", procs, bestShards, best/base)
		}
	}
	if runtime.NumCPU() == 1 {
		fmt.Printf("# NOTE: single hardware CPU — GOMAXPROCS>1 points oversubscribe one core\n")
		fmt.Printf("# and measure scheduling overhead, not parallel speedup. Re-run on a\n")
		fmt.Printf("# multi-core host before drawing shard-scalability conclusions.\n")
	}
	return nil
}

func runGate(benchPath, baselinePath, outPath string) error {
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := bench.ParseGoBench(in)
	if err != nil {
		return fmt.Errorf("parse bench output: %w", err)
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark results in %s", benchPath)
	}
	spec, err := bench.LoadGateSpec(baselinePath)
	if err != nil {
		return err
	}
	rep := bench.RunGate(measured, spec)
	rep.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	if !rep.Pass {
		return fmt.Errorf("benchmark gate failed")
	}
	return nil
}

func run(fig string, full bool) error {
	opt := bench.Quick()
	if full {
		opt = bench.Full()
	}

	type job struct {
		name string
		fn   func(bench.Options) (bench.Result, error)
	}
	jobs := map[string]job{
		"4a":         {"Figure 4(a)", bench.Fig4aResponseTime},
		"4b":         {"Figure 4(b)", bench.Fig4bThroughput},
		"link":       {"Link baseline", bench.LinkBaseline},
		"fanout":     {"Fan-out ablation", bench.AblationFanout},
		"quench":     {"Quench ablation", bench.AblationQuench},
		"redelivery": {"Redelivery ablation", bench.AblationRedelivery},
	}
	order := []string{"link", "4a", "4b", "fanout", "quench", "redelivery"}

	var selected []string
	if fig == "all" {
		selected = order
	} else {
		if _, ok := jobs[fig]; !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		selected = []string{fig}
	}

	for _, key := range selected {
		j := jobs[key]
		fmt.Fprintf(os.Stderr, "running %s...\n", j.name)
		res, err := j.fn(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		res.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}
