// Command benchfig regenerates the paper's evaluation figures as text
// series (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	benchfig -fig 4a          # Figure 4(a): response time vs payload
//	benchfig -fig 4b          # Figure 4(b): throughput vs payload
//	benchfig -fig link        # §V in-text link calibration
//	benchfig -fig fanout      # ablation: delay vs recipients
//	benchfig -fig quench      # ablation: quenching savings
//	benchfig -fig redelivery  # ablation: disconnect/redeliver cycle
//	benchfig -fig all -full   # everything, figure-quality sweeps
//
// It doubles as the CI benchmark regression gate: feed it the text
// output of `go test -bench` and a committed baseline, and it fails
// (exit 1) when a gated metric regresses beyond the tolerance or a
// required ratio (e.g. windowed ≥2× stop-and-wait) is not met:
//
//	go test -run '^$' -bench ... | tee bench.txt
//	benchfig -gate bench.txt -baseline BENCH_PR4.json -gate-out bench.json
//
// A third mode measures CPU scaling: `benchfig -cpus` reruns the bus
// hot-path benchmark (local dispatch and member fan-out) under each
// GOMAXPROCS in -cpus-list (via `go test -cpu`) and prints throughput
// per (delivery, GOMAXPROCS, shards) point plus speedups against the
// single-processor single-shard baseline — the sweep the ROADMAP calls
// for before believing any shard-scalability claim. -cpus-out writes
// the machine-readable "cpus" section, -cpus-merge folds it into a
// committed baseline, and -cpus-gate fails the run when speedups do
// not scale monotonically — enforced only on hosts with ≥4 hardware
// CPUs; on smaller hosts (1-CPU CI) the sweep is informational, since
// oversubscribed GOMAXPROCS on one core measures scheduling overhead,
// not parallel speedup:
//
//	benchfig -cpus -cpus-list 1,2,4 -cpus-merge BENCH_PR8.json -cpus-gate
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"github.com/amuse/smc/internal/bench"
)

func main() {
	var (
		fig       = flag.String("fig", "all", "figure to regenerate: 4a, 4b, link, fanout, quench, redelivery, all")
		full      = flag.Bool("full", false, "figure-quality sweep (slower); default is a quick sweep")
		gate      = flag.String("gate", "", "gate mode: path to `go test -bench` output (\"-\" for stdin)")
		baseline  = flag.String("baseline", "BENCH_PR4.json", "gate mode: committed baseline JSON with a \"gate\" section")
		gateOut   = flag.String("gate-out", "", "gate mode: write the machine-readable report JSON here")
		cpus      = flag.Bool("cpus", false, "CPU-scaling mode: run BenchmarkBusHotPath (local and member delivery) under each -cpus-list GOMAXPROCS value")
		cpusList  = flag.String("cpus-list", "1,2,4", "cpus mode: comma-separated GOMAXPROCS values to sweep")
		cpusOut   = flag.String("cpus-out", "", "cpus mode: write the machine-readable \"cpus\" section JSON here")
		cpusMerge = flag.String("cpus-merge", "", "cpus mode: merge the \"cpus\" section into this baseline JSON in place")
		cpusGate  = flag.Bool("cpus-gate", false, "cpus mode: fail unless speedups scale monotonically (only enforced on hosts with ≥4 hardware CPUs)")
	)
	flag.Parse()
	if *cpus {
		if err := runCPUSweep(*cpusList, *cpusOut, *cpusMerge, *cpusGate); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if *gate != "" {
		if err := runGate(*gate, *baseline, *gateOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

// cpuSweepBench is the benchmark pattern the -cpus mode measures:
// both delivery modes at 8-subscriber fan-out, every shards variant.
const cpuSweepBench = "BenchmarkBusHotPath/delivery=(local|member)/fanout=8"

// runCPUSweep executes the bus hot-path benchmark (local dispatch and
// member fan-out) across the requested GOMAXPROCS values, prints an
// events/sec table per (delivery, GOMAXPROCS, shards) point with
// speedups relative to the single-processor single-shard baseline,
// and optionally emits/merges the machine-readable "cpus" section and
// gates on scaling monotonicity.
func runCPUSweep(list, outPath, mergePath string, gate bool) error {
	var procsSeen []int
	for _, s := range strings.Split(list, ",") {
		p, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || p < 1 {
			return fmt.Errorf("bad -cpus-list entry %q", s)
		}
		procsSeen = append(procsSeen, p)
	}
	if len(procsSeen) == 0 {
		return fmt.Errorf("-cpus-list is empty")
	}
	fmt.Fprintf(os.Stderr, "running %s under -cpu %s (hardware CPUs: %d)...\n",
		cpuSweepBench, list, runtime.NumCPU())

	// One `go test` invocation per -cpu value: sub-benchmark discovery
	// runs shardCounts() under that GOMAXPROCS, so the shards=GOMAXPROCS
	// point exists at every processor count (a single -cpu 1,2,4 run
	// discovers the tree once, under the first value only). The loop
	// variable already identifies the processor count, so the standard
	// suffix-stripping parser does.
	var points []bench.CPUPoint
	for _, procs := range procsSeen {
		cmd := exec.Command("go", "test", "./internal/bus", "-run", "^$",
			"-bench", cpuSweepBench, "-benchtime", "1s",
			"-cpu", strconv.Itoa(procs))
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return fmt.Errorf("go test -cpu %d: %w", procs, err)
		}
		meas, err := bench.ParseGoBench(bytes.NewReader(out))
		if err != nil {
			return fmt.Errorf("parse bench output: %w", err)
		}
		for name, m := range meas {
			delivery := ""
			switch {
			case strings.Contains(name, "delivery=local"):
				delivery = "local"
			case strings.Contains(name, "delivery=member"):
				delivery = "member"
			default:
				continue
			}
			j := strings.LastIndex(name, "shards=")
			if j < 0 {
				continue
			}
			shards, err := strconv.Atoi(name[j+len("shards="):])
			if err != nil {
				continue
			}
			points = append(points, bench.CPUPoint{
				Delivery: delivery, Procs: procs, Shards: shards,
				EventsPerSec: m.Metrics["events/sec"],
			})
		}
	}
	if len(points) == 0 {
		return fmt.Errorf("no benchmark results")
	}
	sweep := bench.BuildCPUSweep(cpuSweepBench, runtime.NumCPU(), points)

	fmt.Printf("# CPU scaling sweep: %s (events/sec)\n", cpuSweepBench)
	fmt.Printf("# hardware CPUs: %d\n", runtime.NumCPU())
	sort.Slice(points, func(i, j int) bool {
		a, b := points[i], points[j]
		if a.Delivery != b.Delivery {
			return a.Delivery < b.Delivery
		}
		if a.Procs != b.Procs {
			return a.Procs < b.Procs
		}
		return a.Shards < b.Shards
	})
	for _, p := range points {
		fmt.Printf("delivery=%s GOMAXPROCS=%d shards=%d %.0f\n",
			p.Delivery, p.Procs, p.Shards, p.EventsPerSec)
	}
	for _, delivery := range []string{"local", "member"} {
		for _, procs := range procsSeen {
			if sp, ok := sweep.Speedups[delivery][strconv.Itoa(procs)]; ok {
				fmt.Printf("delivery=%s GOMAXPROCS=%d speedup vs 1-proc/1-shard: %.2fx\n",
					delivery, procs, sp)
			}
		}
	}
	if runtime.NumCPU() == 1 {
		fmt.Printf("# NOTE: single hardware CPU — GOMAXPROCS>1 points oversubscribe one core\n")
		fmt.Printf("# and measure scheduling overhead, not parallel speedup. Re-run on a\n")
		fmt.Printf("# multi-core host before drawing shard-scalability conclusions.\n")
	}

	if outPath != "" {
		data, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if mergePath != "" {
		if err := bench.MergeCPUSection(mergePath, sweep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "merged cpus section into %s\n", mergePath)
	}
	if gate {
		rep := bench.GateCPUSweep(sweep, runtime.NumCPU())
		rep.Fprint(os.Stdout)
		if !rep.Pass {
			return fmt.Errorf("cpu-scaling gate failed")
		}
	}
	return nil
}

func runGate(benchPath, baselinePath, outPath string) error {
	var in io.Reader = os.Stdin
	if benchPath != "-" {
		f, err := os.Open(benchPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	measured, err := bench.ParseGoBench(in)
	if err != nil {
		return fmt.Errorf("parse bench output: %w", err)
	}
	if len(measured) == 0 {
		return fmt.Errorf("no benchmark results in %s", benchPath)
	}
	spec, err := bench.LoadGateSpec(baselinePath)
	if err != nil {
		return err
	}
	rep := bench.RunGate(measured, spec)
	rep.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
	}
	if !rep.Pass {
		return fmt.Errorf("benchmark gate failed")
	}
	return nil
}

func run(fig string, full bool) error {
	opt := bench.Quick()
	if full {
		opt = bench.Full()
	}

	type job struct {
		name string
		fn   func(bench.Options) (bench.Result, error)
	}
	jobs := map[string]job{
		"4a":         {"Figure 4(a)", bench.Fig4aResponseTime},
		"4b":         {"Figure 4(b)", bench.Fig4bThroughput},
		"link":       {"Link baseline", bench.LinkBaseline},
		"fanout":     {"Fan-out ablation", bench.AblationFanout},
		"quench":     {"Quench ablation", bench.AblationQuench},
		"redelivery": {"Redelivery ablation", bench.AblationRedelivery},
	}
	order := []string{"link", "4a", "4b", "fanout", "quench", "redelivery"}

	var selected []string
	if fig == "all" {
		selected = order
	} else {
		if _, ok := jobs[fig]; !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		selected = []string{fig}
	}

	for _, key := range selected {
		j := jobs[key]
		fmt.Fprintf(os.Stderr, "running %s...\n", j.name)
		res, err := j.fn(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		res.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}
