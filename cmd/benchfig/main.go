// Command benchfig regenerates the paper's evaluation figures as text
// series (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	benchfig -fig 4a          # Figure 4(a): response time vs payload
//	benchfig -fig 4b          # Figure 4(b): throughput vs payload
//	benchfig -fig link        # §V in-text link calibration
//	benchfig -fig fanout      # ablation: delay vs recipients
//	benchfig -fig quench      # ablation: quenching savings
//	benchfig -fig redelivery  # ablation: disconnect/redeliver cycle
//	benchfig -fig all -full   # everything, figure-quality sweeps
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/amuse/smc/internal/bench"
)

func main() {
	var (
		fig  = flag.String("fig", "all", "figure to regenerate: 4a, 4b, link, fanout, quench, redelivery, all")
		full = flag.Bool("full", false, "figure-quality sweep (slower); default is a quick sweep")
	)
	flag.Parse()
	if err := run(*fig, *full); err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func run(fig string, full bool) error {
	opt := bench.Quick()
	if full {
		opt = bench.Full()
	}

	type job struct {
		name string
		fn   func(bench.Options) (bench.Result, error)
	}
	jobs := map[string]job{
		"4a":         {"Figure 4(a)", bench.Fig4aResponseTime},
		"4b":         {"Figure 4(b)", bench.Fig4bThroughput},
		"link":       {"Link baseline", bench.LinkBaseline},
		"fanout":     {"Fan-out ablation", bench.AblationFanout},
		"quench":     {"Quench ablation", bench.AblationQuench},
		"redelivery": {"Redelivery ablation", bench.AblationRedelivery},
	}
	order := []string{"link", "4a", "4b", "fanout", "quench", "redelivery"}

	var selected []string
	if fig == "all" {
		selected = order
	} else {
		if _, ok := jobs[fig]; !ok {
			return fmt.Errorf("unknown figure %q", fig)
		}
		selected = []string{fig}
	}

	for _, key := range selected {
		j := jobs[key]
		fmt.Fprintf(os.Stderr, "running %s...\n", j.name)
		res, err := j.fn(opt)
		if err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		res.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}
