// Command smcd runs a full Self-Managed Cell (event bus + discovery
// service + policy service) over real UDP sockets on the local host,
// mirroring the prototype deployment of §IV.
//
// Usage:
//
//	smcd -cell ward-3 -secret s3cret -policies policies.pol
//
// The daemon prints the bus and discovery service IDs (which encode
// their UDP address and port, §IV); hand the discovery ID to sensorsim
// instances so they can join.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/amuse/smc/internal/event"
	"github.com/amuse/smc/internal/matcher"
	"github.com/amuse/smc/internal/policy"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/store"
	"github.com/amuse/smc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		cellName   = flag.String("cell", "smc-cell", "cell name")
		secret     = flag.String("secret", "change-me", "shared admission secret")
		policyFile = flag.String("policies", "", "Ponder-lite policy file to load")
		engine     = flag.String("matcher", "fast", "matching mechanism: fast or siena")
		lease      = flag.Duration("lease", 2*time.Second, "membership lease")
		grace      = flag.Duration("grace", 3*time.Second, "grace period after lease expiry")
		busAddr    = flag.String("addr", "127.0.0.1:0", "bus listen address (host:port; port 0: OS chooses)")
		discAddr   = flag.String("disc-addr", "127.0.0.1:0", "discovery listen address (host:port; port 0: OS chooses)")
		drain      = flag.Duration("drain", 5*time.Second, "in-flight delivery drain budget on shutdown")
		batch      = flag.Int("batch", 0, "coalesce up to N events per outbound packet (0: off)")
		verbose    = flag.Bool("v", false, "log policy actions and membership changes")

		durable      = flag.Bool("durable", false, "retain published events in a durable log for replay to durable consumers")
		durableDir   = flag.String("durable-dir", "", "persist the durable log's sealed segments here (empty: memory-only; implies -durable)")
		durableBytes = flag.Uint64("durable-max-bytes", 0, "durable log retention: max record bytes (0: layer default 16MiB)")
		durableEvts  = flag.Uint64("durable-max-events", 0, "durable log retention: max retained events (0: unlimited)")
		durableAge   = flag.Duration("durable-max-age", 0, "durable log retention: max record age (0: unlimited)")
		syncEvery    = flag.Int("durable-sync-every", 0, "fsync the active segment's tail every N appends (0: sealed segments only; needs -durable-dir)")
		syncInterval = flag.Duration("durable-sync-interval", 0, "fsync the active segment's tail at least this often (0: off; needs -durable-dir)")
	)
	flag.Parse()

	busOpt, err := transport.WithAddr(*busAddr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	discOpt, err := transport.WithAddr(*discAddr)
	if err != nil {
		return fmt.Errorf("-disc-addr: %w", err)
	}
	busTr, err := transport.NewUDPTransport(busOpt)
	if err != nil {
		return fmt.Errorf("bus transport: %w", err)
	}
	discTr, err := transport.NewUDPTransport(discOpt)
	if err != nil {
		return fmt.Errorf("discovery transport: %w", err)
	}

	cfg := smc.Config{
		Cell:    *cellName,
		Secret:  []byte(*secret),
		Matcher: matcher.Kind(*engine),
		Lease:   *lease,
		Grace:   *grace,
		Batch:   smc.BatchConfig{Events: *batch},
	}
	if *durable || *durableDir != "" {
		cfg.Durable = &store.Config{
			Dir:          *durableDir,
			MaxBytes:     *durableBytes,
			MaxEvents:    *durableEvts,
			MaxAge:       *durableAge,
			SyncEvery:    *syncEvery,
			SyncInterval: *syncInterval,
		}
	}
	if *verbose {
		cfg.PolicyOptions = append(cfg.PolicyOptions,
			policy.WithLogf(func(format string, args ...interface{}) {
				log.Printf(format, args...)
			}))
	}
	if *policyFile != "" {
		text, err := os.ReadFile(*policyFile)
		if err != nil {
			return fmt.Errorf("read policies: %w", err)
		}
		cfg.PolicyText = string(text)
	}

	cell, err := smc.NewCell(busTr, discTr, cfg)
	if err != nil {
		return err
	}
	cell.Start()

	if *verbose {
		watcher := cell.Bus.Local("smcd-log")
		logMember := func(e *event.Event) {
			name, _ := e.Get("name")
			dt, _ := e.Get(event.AttrDeviceType)
			log.Printf("%s: %s (%s)", e.Type(), name, dt)
		}
		if err := watcher.Subscribe(event.NewFilter().WhereType(event.TypeNewMember), logMember); err != nil {
			return err
		}
		if err := watcher.Subscribe(event.NewFilter().WhereType(event.TypePurgeMember), logMember); err != nil {
			return err
		}
	}

	fmt.Printf("cell      : %s\n", *cellName)
	fmt.Printf("matcher   : %s\n", cell.Bus.MatcherName())
	if log := cell.Bus.DurableLog(); log != nil {
		mode := "memory"
		if *durableDir != "" {
			mode = *durableDir
		}
		fmt.Printf("durable   : epoch=%016x store=%s\n", log.Epoch(), mode)
	}
	fmt.Printf("bus       : %s (udp %s)\n", cell.Bus.ID(), busTr.LocalAddr())
	fmt.Printf("discovery : %s (udp %s)\n", cell.Discovery.ID(), discTr.LocalAddr())
	fmt.Printf("join with : sensorsim -cell %s -secret %s -discovery %s\n",
		*cellName, *secret, cell.Discovery.ID())
	// The single machine-readable line harnesses wait for; with -addr
	// port 0 this is the only way to learn the bound addresses.
	fmt.Printf("ready cell=%s bus=%s bus-addr=%s discovery=%s disc-addr=%s\n",
		*cellName, cell.Bus.ID(), busTr.LocalAddr(), cell.Discovery.ID(), discTr.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			return shutdown(cell, *drain)
		case <-ticker.C:
			members := cell.Discovery.Members()
			st := cell.Bus.Stats()
			fmt.Printf("[status] members=%d published=%d delivered=%d quenches=%d denied=%d\n",
				len(members), st.Published, st.EnqueuedRemote+st.DeliveredLocal,
				st.Quenches, st.AuthDenied)
		}
	}
}

// shutdown drains both reliable endpoints, closes the cell and turns
// the packet-pool balance into the exit status: a daemon that leaked
// pooled packets exits non-zero so a harness can catch the regression.
func shutdown(cell *smc.Cell, drain time.Duration) error {
	fmt.Println("\nshutting down: draining in-flight deliveries")
	err := cell.Shutdown(drain)
	acq, rec, clean := cell.LeakCheck()
	fmt.Printf("leakcheck acquired=%d recycled=%d leaked=%d\n", acq, rec, acq-rec)
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if !clean {
		return fmt.Errorf("packet pool leak: %d packets not recycled", acq-rec)
	}
	return nil
}
