// Command sensorsim simulates a body sensor (or actuator) that joins a
// running smcd cell over UDP and streams device-native readings, which
// the cell-side proxy translates into events (§III-B).
//
// Usage:
//
//	sensorsim -cell ward-3 -secret s3cret -discovery <id from smcd> \
//	          -kind heart-rate -interval 1s
//	sensorsim -cell ward-3 -secret s3cret -discovery <id> \
//	          -actuator defib-1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/amuse/smc/internal/ident"
	"github.com/amuse/smc/internal/sensor"
	"github.com/amuse/smc/internal/smc"
	"github.com/amuse/smc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func kindAndDeviceType(kind string) (sensor.Kind, string, error) {
	switch kind {
	case "heart-rate":
		return sensor.KindHeartRate, sensor.DeviceTypeHeartRate, nil
	case "spo2":
		return sensor.KindSpO2, sensor.DeviceTypeSpO2, nil
	case "temperature":
		return sensor.KindTemperature, sensor.DeviceTypeTemperature, nil
	case "bp-systolic":
		return sensor.KindBPSystolic, sensor.DeviceTypeBP, nil
	case "bp-diastolic":
		return sensor.KindBPDiastolic, sensor.DeviceTypeBP, nil
	case "glucose":
		return sensor.KindGlucose, sensor.DeviceTypeGlucose, nil
	default:
		return 0, "", fmt.Errorf("unknown sensor kind %q", kind)
	}
}

func run() error {
	var (
		cellName = flag.String("cell", "smc-cell", "cell to join")
		secret   = flag.String("secret", "change-me", "shared admission secret")
		discStr  = flag.String("discovery", "", "discovery service ID (from smcd); empty waits for beacons")
		kindStr  = flag.String("kind", "heart-rate", "sensor kind: heart-rate, spo2, temperature, bp-systolic, bp-diastolic, glucose")
		name     = flag.String("name", "", "device name (default <kind>-sim)")
		interval = flag.Duration("interval", time.Second, "sampling interval")
		actuator = flag.String("actuator", "", "run as an actuator with this name instead of a sensor")
		seed     = flag.Int64("seed", 1, "waveform seed")
		addr     = flag.String("addr", "127.0.0.1:0", "listen address (host:port; port 0: OS chooses)")
	)
	flag.Parse()

	addrOpt, err := transport.WithAddr(*addr)
	if err != nil {
		return fmt.Errorf("-addr: %w", err)
	}
	tr, err := transport.NewUDPTransport(addrOpt)
	if err != nil {
		return fmt.Errorf("transport: %w", err)
	}

	var discID ident.ID
	if *discStr != "" {
		discID, err = ident.Parse(*discStr)
		if err != nil {
			return fmt.Errorf("discovery ID: %w", err)
		}
	}

	devType := ""
	var kind sensor.Kind
	devName := *name
	if *actuator != "" {
		devType = sensor.DeviceTypeDefib
		if devName == "" {
			devName = *actuator
		}
	} else {
		kind, devType, err = kindAndDeviceType(*kindStr)
		if err != nil {
			return err
		}
		if devName == "" {
			devName = *kindStr + "-sim"
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dev, err := smc.JoinCellWithRetry(ctx, tr, smc.DeviceConfig{
		Type:      devType,
		Name:      devName,
		Secret:    []byte(*secret),
		Cell:      *cellName,
		Discovery: discID,
	}, smc.RetryConfig{})
	if err != nil {
		return fmt.Errorf("join: %w", err)
	}
	fmt.Printf("joined cell %q as %s (%s), bus %s\n",
		dev.Join.Cell, devName, devType, dev.Join.Bus)
	fmt.Printf("ready name=%s cell=%s addr=%s\n", devName, dev.Join.Cell, tr.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if *actuator != "" {
		act := sensor.NewActuatorSim(*actuator)
		act.Start(dev.Client.Data())
		fmt.Println("actuator ready; waiting for commands")
		<-sig
		act.Stop()
		fmt.Printf("executed %d commands\n", len(act.Actions()))
		return dev.Leave()
	}

	sim := sensor.NewSim(kind, sensor.WaveformFor(kind, *seed), *interval, dev.Client)
	sim.Start()
	fmt.Printf("streaming %s readings every %v\n", *kindStr, *interval)

	ticker := time.NewTicker(10 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-sig:
			sim.Stop()
			fmt.Printf("\nsent %d readings (%d failures)\n", sim.Sent(), sim.Failures())
			return dev.Leave()
		case <-ticker.C:
			fmt.Printf("[status] sent=%d failures=%d quenched=%v\n",
				sim.Sent(), sim.Failures(), dev.Client.Quenched())
		}
	}
}
