package smc_test

import (
	"testing"
	"time"

	smc "github.com/amuse/smc"
)

// TestPublicAPISimulatedNetwork exercises the facade exactly as the
// README shows it: simulated network, cell, two devices, filtered
// delivery.
func TestPublicAPISimulatedNetwork(t *testing.T) {
	secret := []byte("api-secret")
	net := smc.NewNetwork(smc.LinkPerfect)
	defer net.Close()

	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		return tr
	}

	cell, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:           "api-cell",
		Secret:         secret,
		Matcher:        smc.MatcherFast,
		BeaconInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	defer cell.Close()

	sub, err := smc.JoinCell(attach(0x2001), smc.DeviceConfig{
		Type: "generic", Name: "sub", Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := smc.JoinCell(attach(0x2002), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	filter := smc.NewFilter().
		WhereType(smc.TypeAlarm).
		Where("severity", smc.OpGe, smc.Int(2))
	if err := sub.Client.Subscribe(filter); err != nil {
		t.Fatal(err)
	}

	if err := pub.Client.Publish(
		smc.NewTypedEvent(smc.TypeAlarm).SetInt("severity", 3)); err != nil {
		t.Fatal(err)
	}
	e, err := sub.Client.NextEvent(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != smc.TypeAlarm {
		t.Errorf("type = %q", e.Type())
	}

	// Value helpers are wired through.
	v, ok := e.Get("severity")
	if !ok || !v.Equal(smc.Int(3)) {
		t.Errorf("severity = %v", v)
	}
}

// TestPublicAPITypedMatcher runs a cell on the type-based engine (§VI
// future work) through the public facade: typed subscriptions receive
// subtypes; untyped subscriptions are rejected by the engine.
func TestPublicAPITypedMatcher(t *testing.T) {
	secret := []byte("typed-secret")
	net := smc.NewNetwork(smc.LinkPerfect)
	defer net.Close()
	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			t.Fatalf("attach: %v", err)
		}
		return tr
	}
	cell, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:           "typed-cell",
		Secret:         secret,
		Matcher:        smc.MatcherTyped,
		BeaconInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	defer cell.Close()
	if cell.Bus.MatcherName() != "typed" {
		t.Fatalf("matcher = %s", cell.Bus.MatcherName())
	}

	sub, err := smc.JoinCell(attach(0x2001), smc.DeviceConfig{
		Type: "generic", Name: "sub", Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	pub, err := smc.JoinCell(attach(0x2002), smc.DeviceConfig{
		Type: "generic", Name: "pub", Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Subscribe to the supertype; receive the subtype.
	if err := sub.Client.Subscribe(smc.NewFilter().WhereType("reading")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Client.Publish(smc.NewTypedEvent("reading/heart-rate").SetFloat("value", 64)); err != nil {
		t.Fatal(err)
	}
	e, err := sub.Client.NextEvent(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != "reading/heart-rate" {
		t.Errorf("type = %q", e.Type())
	}
	// A sibling type is not delivered.
	if err := pub.Client.Publish(smc.NewTypedEvent("actuate/defib")); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Client.NextEvent(200 * time.Millisecond); err == nil {
		t.Error("sibling type delivered")
	}
}

// TestPublicAPIOverRealUDP runs the full stack — discovery with direct
// addressing, admission, pub/sub — over real UDP sockets on loopback,
// the prototype's §IV deployment.
func TestPublicAPIOverRealUDP(t *testing.T) {
	secret := []byte("udp-secret")

	newUDP := func() smc.Transport {
		tr, err := smc.NewUDPTransport()
		if err != nil {
			t.Skipf("UDP unavailable: %v", err)
		}
		return tr
	}

	cell, err := smc.NewCell(newUDP(), newUDP(), smc.Config{
		Cell:   "udp-cell",
		Secret: secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	cell.Start()
	defer cell.Close()

	join := func(name string) *smc.Device {
		dev, err := smc.JoinCell(newUDP(), smc.DeviceConfig{
			Type: "generic", Name: name, Secret: secret,
			Cell: "udp-cell", Discovery: cell.Discovery.ID(),
		})
		if err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
		return dev
	}
	sub := join("udp-sub")
	defer sub.Close()
	pub := join("udp-pub")
	defer pub.Close()

	if err := sub.Client.Subscribe(smc.NewFilter().WhereType("ping")); err != nil {
		t.Fatal(err)
	}
	const count = 10
	for i := 0; i < count; i++ {
		if err := pub.Client.Publish(smc.NewTypedEvent("ping").SetInt("n", int64(i))); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		e, err := sub.Client.NextEvent(5 * time.Second)
		if err != nil {
			t.Fatalf("receive %d: %v", i, err)
		}
		v, _ := e.Get("n")
		if n, _ := v.Int(); n != int64(i) {
			t.Fatalf("out of order over UDP: got %d want %d", n, i)
		}
	}
}

// TestPublicAPIPolicyRoundTrip drives the policy surface through the
// facade.
func TestPublicAPIPolicyRoundTrip(t *testing.T) {
	f, err := smc.ParsePolicies(`
obligation demo { on type = "t" do log("x") }
authorization a { effect deny subject "s" action publish }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Obligations) != 1 || len(f.Authorizations) != 1 {
		t.Fatalf("parsed %d/%d", len(f.Obligations), len(f.Authorizations))
	}
}
