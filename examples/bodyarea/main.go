// Body-area network scenario (the paper's motivating deployment, §I):
// four body sensors stream native readings into the cell; the proxies
// translate them into events; obligation policies watch for a
// tachycardia episode and command a defibrillator to run analysis; a
// deny rule stops sensors from commanding actuators directly.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	smc "github.com/amuse/smc"
	"github.com/amuse/smc/internal/sensor"
)

const policies = `
# Raise an alarm event for dangerously high heart rate readings.
obligation hr-high for "hr-sensor" {
  on type = "reading" && kind = "heart-rate"
  when value > 180
  do publish(type = "alarm", source = "hr", severity = 3),
     log("tachycardia detected")
}

# On any severity-3 alarm, ask the defibrillator to analyse the rhythm.
obligation defib-analyse {
  on type = "alarm" && severity >= 3
  do publish(type = "actuate", target = "defib-1", action = "analyse")
}

# Watch oxygen saturation too.
obligation spo2-low for "spo2-sensor" {
  on type = "reading" && kind = "spo2"
  when value < 90
  do publish(type = "alarm", source = "spo2", severity = 2),
     log("hypoxaemia detected")
}

# Sensors must never command actuators themselves.
authorization no-sensor-actuation {
  effect deny
  subject "hr-sensor"
  action publish
  target type = "actuate"
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	secret := []byte("patient-7-secret")
	net := smc.NewNetwork(smc.LinkUSB)
	defer net.Close()

	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	cell, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:       "patient-7",
		Secret:     secret,
		PolicyText: policies,
	})
	if err != nil {
		return err
	}
	cell.Start()
	defer cell.Close()
	fmt.Println("patient-7 cell up with", len(cell.Policy.Obligations()), "obligation policies")

	// The defibrillator joins; its proxy subscribes to actuate events
	// addressed to it on the device's behalf (§III-B).
	defib, err := smc.JoinCellWithRetry(context.Background(), attach(0x2001), smc.DeviceConfig{
		Type: "defibrillator", Name: "defib-1", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer defib.Close()
	act := sensor.NewActuatorSim("defib-1")
	act.Start(defib.Client.Data())
	defer act.Stop()
	fmt.Println("defibrillator ready")

	// Four body sensors join and stream native readings. The heart
	// rate waveform is scripted with a tachycardia episode starting
	// at sample 6.
	type sensorSpec struct {
		kind sensor.Kind
		dt   string
		name string
		wave *sensor.Waveform
	}
	specs := []sensorSpec{
		{sensor.KindHeartRate, sensor.DeviceTypeHeartRate, "hr-1",
			sensor.HeartRateWaveform(1, sensor.WithEpisode(6, 4, 130))},
		{sensor.KindSpO2, sensor.DeviceTypeSpO2, "spo2-1", sensor.SpO2Waveform(2)},
		{sensor.KindTemperature, sensor.DeviceTypeTemperature, "temp-1", sensor.TemperatureWaveform(3)},
		{sensor.KindBPSystolic, sensor.DeviceTypeBP, "bp-1", sensor.BPSystolicWaveform(4)},
	}

	var sims []*sensor.Sim
	for i, spec := range specs {
		dev, err := smc.JoinCellWithRetry(context.Background(), attach(uint64(0x3001+i)), smc.DeviceConfig{
			Type: spec.dt, Name: spec.name, Secret: secret,
		}, smc.RetryConfig{})
		if err != nil {
			return fmt.Errorf("join %s: %w", spec.name, err)
		}
		defer dev.Close()
		sims = append(sims, sensor.NewSim(spec.kind, spec.wave, 150*time.Millisecond, dev.Client))
	}
	fmt.Printf("%d sensors joined; cell members: %d\n", len(sims), len(cell.Discovery.Members()))

	// A nurse's monitor watches translated readings and alarms.
	monitor, err := smc.JoinCellWithRetry(context.Background(), attach(0x4001), smc.DeviceConfig{
		Type: "generic", Name: "nurse-monitor", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer monitor.Close()
	if err := monitor.Client.Subscribe(smc.NewFilter().WhereType("alarm")); err != nil {
		return err
	}

	for _, s := range sims {
		s.Start()
	}
	fmt.Println("sensors streaming; waiting for the scripted tachycardia episode...")

	alarm, err := monitor.Client.NextEvent(20 * time.Second)
	if err != nil {
		return fmt.Errorf("no alarm observed: %w", err)
	}
	src, _ := alarm.Get("source")
	fmt.Printf("ALARM received at monitor: source=%s\n", src)
	alarm.Release() // delivered events are pooled borrowing decodes

	// The defibrillator should receive its analyse command shortly.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(act.Actions()) == 0 {
		time.Sleep(20 * time.Millisecond)
	}
	for _, s := range sims {
		s.Stop()
	}
	actions := act.Actions()
	if len(actions) == 0 {
		return fmt.Errorf("defibrillator never commanded")
	}
	name, _ := sensor.ActionForOpcode(actions[0].Opcode)
	fmt.Printf("defibrillator executed: %s (total commands: %d)\n", name, len(actions))

	st := cell.Bus.Stats()
	fmt.Printf("bus stats: published=%d matched=%d denied=%d\n",
		st.Published, st.Matched, st.AuthDenied)
	return nil
}
