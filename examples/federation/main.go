// Federation scenario (§I: cells "collaborate and integrate with each
// other in peer-to-peer relationships"): a patient's body-area cell
// and the ward's cell run side by side; the ward federates with the
// patient cell so that only alarms — not raw readings — cross the
// boundary, tagged with their origin.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	smc "github.com/amuse/smc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	patientSecret := []byte("patient-7-secret")
	wardSecret := []byte("ward-3-secret")

	net := smc.NewNetwork(smc.LinkWiFi)
	defer net.Close()
	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	// Patient cell with an alarm-raising policy.
	patient, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:   "patient-7",
		Secret: patientSecret,
		PolicyText: `
obligation hr-high {
  on type = "reading" && kind = "heart-rate"
  when value > 180
  do publish(type = "alarm", source = "hr", severity = 3)
}
`,
	})
	if err != nil {
		return err
	}
	patient.Start()
	defer patient.Close()

	// Ward cell.
	ward, err := smc.NewCell(attach(0x2001), attach(0x2002), smc.Config{
		Cell:   "ward-3",
		Secret: wardSecret,
	})
	if err != nil {
		return err
	}
	ward.Start()
	defer ward.Close()
	fmt.Println("patient-7 and ward-3 cells up")

	// The ward imports only alarms from the patient cell.
	link, err := smc.Federate(ward, attach(0x3001), smc.FederateConfig{
		Name:         "ward3-gateway",
		RemoteSecret: patientSecret,
		RemoteCell:   "patient-7",
		Import:       smc.NewFilter().WhereType("alarm"),
	})
	if err != nil {
		return err
	}
	defer link.Close()
	fmt.Printf("federation link up: importing alarms from %q\n", link.RemoteCell())

	// The nurse's station is a member of the ward cell only.
	nurse, err := smc.JoinCellWithRetry(context.Background(), attach(0x3002), smc.DeviceConfig{
		Type: "generic", Name: "nurse-station", Secret: wardSecret, Cell: "ward-3",
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer nurse.Close()
	if err := nurse.Client.Subscribe(smc.NewFilter().WhereType("alarm")); err != nil {
		return err
	}

	// Inside the patient cell, readings flow; one crosses the alarm
	// threshold.
	probe := patient.Bus.Local("probe")
	normal := smc.NewTypedEvent("reading").SetStr("kind", "heart-rate").SetFloat("value", 72)
	tachy := smc.NewTypedEvent("reading").SetStr("kind", "heart-rate").SetFloat("value", 195)
	if err := probe.Publish(normal); err != nil {
		return err
	}
	if err := probe.Publish(tachy); err != nil {
		return err
	}
	fmt.Println("patient cell: published readings 72 bpm, 195 bpm")

	// Only the alarm (raised by the patient cell's policy) reaches
	// the nurse, with provenance.
	e, err := nurse.Client.NextEvent(15 * time.Second)
	if err != nil {
		return fmt.Errorf("nurse saw no alarm: %w", err)
	}
	from, _ := e.Get(smc.AttrFederatedFrom)
	src, _ := e.Get("source")
	fmt.Printf("nurse station received alarm: source=%s federated-from=%s\n", src, from)
	e.Release() // delivered events are pooled borrowing decodes

	if _, err := nurse.Client.NextEvent(400 * time.Millisecond); err == nil {
		return fmt.Errorf("raw reading leaked across the federation boundary")
	}
	fmt.Println("raw readings stayed inside the patient cell")
	fmt.Printf("link stats: imported=%d skipped=%d\n", link.Imported(), link.Skipped())
	return nil
}
