// Home-care scenario (§I: on-body and environmental sensors monitoring
// an elderly patient at home): devices churn as the patient moves
// around the house — a wearable walks out of radio range and returns
// within the grace period (masked transient disconnection, §II-B),
// queued events are redelivered without loss or reordering, and a
// device whose battery dies is eventually purged.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	smc "github.com/amuse/smc"
	"github.com/amuse/smc/internal/event"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	secret := []byte("home-secret")
	net := smc.NewNetwork(smc.LinkWiFi)
	defer net.Close()

	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	cell, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:           "home-monitor",
		Secret:         secret,
		Lease:          400 * time.Millisecond,
		Grace:          3 * time.Second,
		BeaconInterval: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	cell.Start()
	defer cell.Close()
	fmt.Println("home cell up (lease 400ms, grace 3s)")

	// Track membership changes from inside the cell.
	membership := cell.Bus.Local("membership-log")
	logEvent := func(e *event.Event) {
		name, _ := e.Get("name")
		reason, hasReason := e.Get("reason")
		if hasReason {
			fmt.Printf("  [cell] %s: %s (%s)\n", e.Type(), name, reason)
		} else {
			fmt.Printf("  [cell] %s: %s\n", e.Type(), name)
		}
	}
	for _, class := range []string{smc.TypeNewMember, smc.TypePurgeMember} {
		if err := membership.Subscribe(smc.NewFilter().WhereType(class), logEvent); err != nil {
			return err
		}
	}

	// The wearable pendant publishes periodic wellbeing pings; the
	// base station subscribes.
	base, err := smc.JoinCellWithRetry(context.Background(), attach(0x2001), smc.DeviceConfig{
		Type: "generic", Name: "base-station", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer base.Close()
	if err := base.Client.Subscribe(smc.NewFilter().WhereType("ping")); err != nil {
		return err
	}

	pendant, err := smc.JoinCellWithRetry(context.Background(), attach(0x2002), smc.DeviceConfig{
		Type: "generic", Name: "pendant", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer pendant.Close()
	time.Sleep(200 * time.Millisecond) // let membership log print

	// Phase 1: pings while in range.
	for i := 1; i <= 3; i++ {
		if err := pendant.Client.Publish(smc.NewTypedEvent("ping").SetInt("n", int64(i))); err != nil {
			return err
		}
	}

	// Phase 2: the patient walks to the garden — the pendant is out
	// of range, but returns before lease+grace expires. Publishes
	// during the gap are queued by the pendant's proxy... but note
	// the pendant itself cannot reach the bus while isolated, so the
	// interesting queue is bus→pendant; here we demonstrate the
	// *subscriber* side: the base station walks away instead.
	fmt.Println("base station roams out of range (transient)...")
	net.Isolate(base.Client.ID())
	for i := 4; i <= 7; i++ {
		if err := pendant.Client.Publish(smc.NewTypedEvent("ping").SetInt("n", int64(i))); err != nil {
			return err
		}
	}
	time.Sleep(700 * time.Millisecond) // > lease, < lease+grace: masked
	if _, ok := cell.Discovery.Member(base.Client.ID()); !ok {
		return fmt.Errorf("base station purged during grace period")
	}
	fmt.Println("...still a member (disconnection masked); returning")
	net.Restore(base.Client.ID())

	// Phase 3: everything queued during the gap arrives, in order.
	for want := int64(1); want <= 7; want++ {
		e, err := base.Client.NextEvent(15 * time.Second)
		if err != nil {
			return fmt.Errorf("waiting for ping %d: %w", want, err)
		}
		v, _ := e.Get("n")
		n, _ := v.Int()
		e.Release() // delivered events are pooled borrowing decodes
		if n != want {
			return fmt.Errorf("ping %d arrived out of order (want %d)", n, want)
		}
	}
	fmt.Println("all 7 pings delivered exactly once, in order (4-7 redelivered after the gap)")

	// Phase 4: the pendant's battery dies — no Leave, just silence.
	fmt.Println("pendant battery dies...")
	pendantID := pendant.Client.ID()
	if err := pendant.Close(); err != nil {
		return err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := cell.Discovery.Member(pendantID); !ok {
			fmt.Println("pendant purged after lease+grace silence")
			st := cell.Discovery.Stats()
			fmt.Printf("discovery stats: admitted=%d graceEntries=%d graceReturns=%d purged=%d\n",
				st.Admitted, st.GraceEntries, st.GraceReturns, st.Purged)
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("pendant never purged")
}
