// Quickstart: bring up a Self-Managed Cell on a simulated wireless
// network, join two devices via discovery, and pass one event through
// the content-based bus with acknowledged, ordered delivery.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	smc "github.com/amuse/smc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	secret := []byte("ward-secret")

	// A simulated radio space calibrated to the paper's testbed link.
	net := smc.NewNetwork(smc.LinkUSB)
	defer net.Close()

	attach := func(id uint64) smc.Transport {
		tr, err := net.Attach(smc.ID(id))
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	// The cell: event bus + discovery service + policy service.
	cell, err := smc.NewCell(attach(0x1001), attach(0x1002), smc.Config{
		Cell:   "ward-3",
		Secret: secret,
	})
	if err != nil {
		return err
	}
	cell.Start()
	defer cell.Close()
	fmt.Printf("cell %q up: bus=%s discovery=%s (matcher: %s)\n",
		"ward-3", cell.Bus.ID(), cell.Discovery.ID(), cell.Bus.MatcherName())

	// A subscriber device joins through discovery (authenticated).
	monitor, err := smc.JoinCellWithRetry(context.Background(), attach(0x2001), smc.DeviceConfig{
		Type: "generic", Name: "bedside-monitor", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer monitor.Close()
	fmt.Printf("monitor joined: %s\n", monitor.Client.ID())

	// Content-based subscription: alarms with value above 100.
	filter := smc.NewFilter().
		WhereType("alarm").
		Where("value", smc.OpGt, smc.Int(100))
	if err := monitor.Client.Subscribe(filter); err != nil {
		return err
	}

	// A publisher device joins and raises two events; only one matches.
	probe, err := smc.JoinCellWithRetry(context.Background(), attach(0x2002), smc.DeviceConfig{
		Type: "generic", Name: "probe", Secret: secret,
	}, smc.RetryConfig{})
	if err != nil {
		return err
	}
	defer probe.Close()

	low := smc.NewTypedEvent("alarm").SetFloat("value", 50)
	high := smc.NewTypedEvent("alarm").SetFloat("value", 180).SetStr("source", "hr")
	if err := probe.Client.Publish(low); err != nil {
		return err
	}
	if err := probe.Client.Publish(high); err != nil {
		return err
	}
	fmt.Println("published: alarm(value=50), alarm(value=180)")

	e, err := monitor.Client.NextEvent(5 * time.Second)
	if err != nil {
		return err
	}
	v, _ := e.Get("value")
	fmt.Printf("monitor received: %s from %s (value=%s)\n", e.Type(), e.Sender, v)
	e.Release() // delivered events are pooled borrowing decodes

	if _, err := monitor.Client.NextEvent(300 * time.Millisecond); err == nil {
		return fmt.Errorf("unexpected second delivery")
	}
	fmt.Println("low-value alarm correctly filtered out")
	return nil
}
